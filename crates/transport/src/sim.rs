//! The transport event loop: connections × fabric × congestion control.
//!
//! Everything end-to-end happens here: window-gated packet pumping, path
//! selection, delivery and ACK events, RTO retransmission *on a different
//! path* (the paper's instant-recovery mechanism for complete link
//! failures), and receiver-side message completion. Workloads plug in via
//! the [`App`] trait to chain dependent messages (ring AllReduce steps,
//! bursty background jobs) causally inside the simulation.

use stellar_net::{Delivery, Fabric, Network, NicId};
use stellar_sim::{EventQueue, SimDuration, SimRng, SimTime};
use stellar_telemetry::{count, event, span_close, span_open, stage_sample, Entity, Stage, Subsystem};

use crate::cc::{CcConfig, CongestionControl};
use crate::conn::{
    ConnId, ConnState, ConnStats, Connection, FatalError, InflightPacket, MsgId, SendError,
};
use crate::path::{PathAlgo, PathSelector};

/// Span key for the whole-message latency stage: connection id in the
/// high bits, per-connection message id below. Message ids are
/// per-connection sequence numbers, far below 2^40 in any run.
fn msg_span_key(conn: ConnId, msg: MsgId) -> u64 {
    (u64::from(conn.0) << 40) | msg.0
}

/// Transport parameters (§7.2's three key knobs plus the CC profile).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Path-selection algorithm.
    pub algo: PathAlgo,
    /// Paths per connection (4–256 in the paper's sweeps; 128 deployed).
    pub num_paths: u32,
    /// MTU / packet payload size in bytes.
    pub mtu: u64,
    /// Retransmission timeout ("250 µs ... chosen for our low-latency
    /// data center topology").
    pub rto: SimDuration,
    /// Exponential RTO backoff factor: the timeout for retransmit epoch
    /// `k` is `rto × rto_backoff^k`, capped at [`rto_max`]. `1.0`
    /// disables backoff (the pre-hardening fixed-RTO behaviour).
    ///
    /// [`rto_max`]: TransportConfig::rto_max
    pub rto_backoff: f64,
    /// Upper bound on the backed-off RTO.
    pub rto_max: SimDuration,
    /// Consecutive retransmissions of a single packet before the
    /// connection gives up and enters the terminal error state (the IB
    /// `retry_cnt` semantics, except unbounded budgets are not offered —
    /// an unreachable peer must surface as an error, not an infinite
    /// retransmit loop).
    pub retry_budget: u32,
    /// Loss-scoreboard policy for path blacklisting.
    pub scoreboard: crate::path::ScoreboardPolicy,
    /// Plane-level failover for the path scoreboard. `None` (the
    /// default) keeps per-path blacklisting only; `Some` quarantines a
    /// whole plane once a majority of its paths are blacklisted at once,
    /// migrating flows to the surviving plane until a readmission probe
    /// after [`PlaneFailover::readmit_after`](crate::path::PlaneFailover).
    pub plane_failover: Option<crate::path::PlaneFailover>,
    /// Congestion-control parameters.
    pub cc: CcConfig,
    /// §9 ablation: one congestion-control context per path instead of a
    /// single shared CCC.
    pub per_path_cc: bool,
    /// Egress pacing rate in Gbps. `None` sends window-limited bursts;
    /// `Some(rate)` spaces packets at the given rate, modelling the
    /// RNIC's hardware rate limiter / DMA feed (application-limited flows
    /// pace at their offered rate).
    pub pace_gbps: Option<f64>,
    /// Failure recovery policy. `None` (the default) keeps the
    /// pre-recovery behaviour: a fatal error is terminal. `Some` turns
    /// fatal errors into a teardown → backoff → re-establish → replay
    /// cycle (DESIGN.md §11); fault-free runs are byte-identical either
    /// way because the recovery path draws no RNG and schedules no
    /// events until a failure actually occurs.
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            algo: PathAlgo::Obs,
            num_paths: 128,
            mtu: 4096,
            rto: SimDuration::from_micros(250),
            rto_backoff: 2.0,
            rto_max: SimDuration::from_millis(4),
            retry_budget: 16,
            scoreboard: crate::path::ScoreboardPolicy::default(),
            plane_failover: None,
            cc: CcConfig::default(),
            per_path_cc: false,
            pace_gbps: None,
            recovery: None,
        }
    }
}

/// Failure recovery policy: what the transport does when a connection
/// hits a fatal error (retry budget exhausted) instead of dying.
///
/// The cycle is: drain in-flight state and tear down the QP, wait an
/// exponentially backed-off reconnect delay plus the re-establishment
/// cost, then rebuild the send queue from the receiver bitmaps — exactly
/// the packets that never landed — and resume with a fresh congestion
/// context. Consecutive failures (no ACK between them) climb the backoff
/// ladder; [`max_attempts`] consecutive failures make the error terminal.
///
/// [`max_attempts`]: RecoveryPolicy::max_attempts
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Consecutive failed recovery attempts (no successful ACK in
    /// between) before the connection is declared terminally dead.
    pub max_attempts: u32,
    /// Base reconnect delay before the first re-establishment.
    pub backoff: SimDuration,
    /// Exponential multiplier applied per consecutive attempt; `1.0`
    /// disables the ladder.
    pub backoff_mult: f64,
    /// Upper bound on the backed-off reconnect delay.
    pub backoff_max: SimDuration,
    /// QP re-establishment cost paid after the backoff delay: four
    /// control verbs (~120 µs) for a bare QP, or the full ~1.5 s+
    /// vStellar device destroy→recreate lifecycle when the virtual
    /// device itself churns (see `stellar_core::vstellar`).
    pub reestablish: SimDuration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 16,
            backoff: SimDuration::from_millis(1),
            backoff_mult: 2.0,
            backoff_max: SimDuration::from_millis(100),
            reestablish: SimDuration::from_micros(120),
        }
    }
}

impl RecoveryPolicy {
    /// Total teardown→re-establish delay for consecutive attempt
    /// `attempt` (0-based): `min(backoff × backoff_mult^attempt,
    /// backoff_max) + reestablish`.
    pub fn reconnect_delay(&self, attempt: u32) -> SimDuration {
        let base = if self.backoff_mult <= 1.0 || attempt == 0 {
            self.backoff
        } else {
            let scaled =
                self.backoff.as_nanos() as f64 * self.backoff_mult.powi(attempt as i32);
            SimDuration::from_nanos(scaled.min(self.backoff_max.as_nanos() as f64) as u64)
        };
        base + self.reestablish
    }
}

/// Workload hook: called when a message is fully received.
///
/// Generic over the [`Fabric`] the transport runs on (defaulting to the
/// packet-level [`Network`], so `impl App for MyApp` keeps meaning what
/// it always did). Workload apps that should run on any fabric
/// implement `impl<F: Fabric> App<F> for MyApp`.
pub trait App<F: Fabric = Network> {
    /// `msg` on `conn` completed at `sim.now()`. The app may post new
    /// messages via [`TransportSim::post_message`].
    fn on_message_complete(&mut self, sim: &mut TransportSim<F>, conn: ConnId, msg: MsgId);

    /// A timer scheduled via [`TransportSim::schedule_timer`] fired.
    /// Default: ignore. Used by on/off (bursty) workloads.
    fn on_timer(&mut self, sim: &mut TransportSim<F>, token: u64) {
        let _ = (sim, token);
    }

    /// `conn` hit a fatal transport error (retry budget exhausted) and
    /// entered the terminal [`ConnState`]`::Error` state: all queued and
    /// in-flight traffic was discarded and no further packets will flow.
    /// Default: ignore (the state is still queryable via
    /// [`TransportSim::conn_state`]).
    fn on_connection_error(&mut self, sim: &mut TransportSim<F>, conn: ConnId, error: FatalError) {
        let _ = (sim, conn, error);
    }

    /// `conn` finished a recovery cycle: its QP was re-established after
    /// being down for `downtime` and every unacked packet was re-queued
    /// (exactly-once replay from the receiver bitmap). Only fires when a
    /// [`RecoveryPolicy`] is configured. Default: ignore.
    fn on_connection_recovered(
        &mut self,
        sim: &mut TransportSim<F>,
        conn: ConnId,
        downtime: SimDuration,
    ) {
        let _ = (sim, conn, downtime);
    }
}

/// An [`App`] that does nothing (open-loop workloads).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopApp;

impl<F: Fabric> App<F> for NoopApp {
    fn on_message_complete(&mut self, _sim: &mut TransportSim<F>, _conn: ConnId, _msg: MsgId) {}
}

#[derive(Debug)]
enum Ev {
    /// Data packet landed at the receiver.
    Deliver { conn: ConnId, seq: u64, ecn: bool },
    /// ACK landed back at the sender.
    Ack { conn: ConnId, seq: u64, ecn: bool },
    /// Retransmission timer for (conn, seq) at a given retransmit epoch.
    Rto { conn: ConnId, seq: u64, epoch: u32 },
    /// Pacing gate opened: resume pumping the connection.
    Pace { conn: ConnId },
    /// Application-scheduled timer.
    AppTimer { token: u64 },
    /// Recovery reconnect timer: re-establish the connection's QP and
    /// replay unacked traffic.
    Reconnect { conn: ConnId },
}

struct ConnRuntime {
    conn: Connection,
    selector: PathSelector,
    /// One shared CCC, or one per path (§9 ablation).
    ccs: Vec<CongestionControl>,
    ack_delay: SimDuration,
    /// Egress pacing: earliest time the next packet may leave.
    pace_until: SimTime,
    /// Whether a Pace wake-up is already queued.
    pace_scheduled: bool,
    /// Scratch for the per-path inflight snapshot `pump` hands the
    /// selector (reused so the per-packet send path never allocates).
    inflight_scratch: Vec<u64>,
}

/// The transport simulation: fabric + connections + event queue.
///
/// Generic over the [`Fabric`] carrying its packets; the default is the
/// packet-level [`Network`], so plain `TransportSim` in signatures and
/// tests keeps meaning the packet model. The event loop itself is
/// fabric-agnostic: everything below `send`/`control_rtt_component`
/// goes through the trait.
pub struct TransportSim<F: Fabric = Network> {
    config: TransportConfig,
    network: F,
    queue: EventQueue<Ev>,
    conns: Vec<ConnRuntime>,
    completions: Vec<(ConnId, MsgId)>,
    errors: Vec<(ConnId, FatalError)>,
    recovered: Vec<(ConnId, SimDuration)>,
    rng: SimRng,
    /// Reusable buffer for the batched same-timestamp drain in
    /// [`TransportSim::run`] (kept across calls to avoid reallocation).
    batch_buf: Vec<Ev>,
}

impl<F: Fabric> TransportSim<F> {
    /// Build a simulation over `network`.
    pub fn new(network: F, config: TransportConfig, rng: SimRng) -> Self {
        TransportSim {
            config,
            network,
            // Every packet in flight holds a Deliver and an Rto event;
            // presize for a healthy window's worth so the heap does not
            // regrow during the first ramp-up.
            queue: EventQueue::with_capacity(1024),
            conns: Vec::new(),
            completions: Vec::new(),
            errors: Vec::new(),
            recovered: Vec::new(),
            rng,
            batch_buf: Vec::new(),
        }
    }

    /// Rebuild this simulation for a fresh run over a new fabric,
    /// reusing the event-queue and connection-table allocations instead
    /// of rebuilding them (repeated seed runs — calibration + chaos
    /// passes, per-seed averaging — construct thousands of these).
    ///
    /// Equivalent to `TransportSim::new(network, self.config, rng)` with
    /// warm allocations: the clock restarts at zero and all connections
    /// are dropped, so a reset sim is observably identical to a fresh
    /// one.
    pub fn reset(&mut self, network: F, rng: SimRng) {
        self.network = network;
        self.queue.clear();
        self.conns.clear();
        self.completions.clear();
        self.errors.clear();
        self.recovered.clear();
        self.rng = rng;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events scheduled since construction or the last
    /// [`reset`](Self::reset) (which zeroes it via `EventQueue::clear`).
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Deepest pending-event backlog since construction or the last
    /// [`reset`](Self::reset) (which zeroes it via `EventQueue::clear`).
    pub fn queue_peak_len(&self) -> usize {
        self.queue.peak_len()
    }

    /// The transport configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// The underlying fabric (stats, failure injection).
    pub fn network(&self) -> &F {
        &self.network
    }

    /// The underlying fabric, mutable.
    pub fn network_mut(&mut self) -> &mut F {
        &mut self.network
    }

    /// Open an RC connection `src → dst`.
    pub fn add_connection(&mut self, src: NicId, dst: NicId) -> ConnId {
        let id = ConnId(self.conns.len() as u32);
        let cc_count = if self.config.per_path_cc {
            self.config.num_paths as usize
        } else {
            1
        };
        let ack_delay = self.network.control_rtt_component(dst, src);
        let mut selector = PathSelector::new(
            self.config.algo,
            self.config.num_paths,
            self.rng.fork_idx("conn", id.0 as u64),
        );
        selector.set_scoreboard(self.config.scoreboard);
        if let Some(failover) = self.config.plane_failover {
            selector.set_plane_failover(failover);
        }
        self.conns.push(ConnRuntime {
            conn: Connection::new(id, src, dst),
            selector,
            ccs: (0..cc_count)
                .map(|_| CongestionControl::new(self.config.cc.clone()))
                .collect(),
            ack_delay,
            pace_until: SimTime::ZERO,
            pace_scheduled: false,
            inflight_scratch: Vec::new(),
        });
        id
    }

    /// Schedule an [`App::on_timer`] callback at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, token: u64) {
        self.queue.schedule(at, Ev::AppTimer { token });
    }

    /// Post a message of `bytes` on `conn` at the current time; starts
    /// transmission immediately as the window allows.
    pub fn post_message(&mut self, conn: ConnId, bytes: u64) -> MsgId {
        let now = self.now();
        let mtu = self.config.mtu;
        let id = self.conns[conn.0 as usize]
            .conn
            .post_message(now, bytes, mtu);
        count(Subsystem::Transport, "msg.posted", 1);
        span_open(now, Stage::TransportMsg, msg_span_key(conn, id));
        self.pump(conn);
        id
    }

    /// Post a receive buffer on `conn` (two-sided verbs).
    pub fn post_recv(&mut self, conn: ConnId, bytes: u64) {
        self.conns[conn.0 as usize].conn.post_recv(bytes);
    }

    /// Two-sided send on `conn`: requires a posted receive at the peer
    /// (RNR NAK otherwise), then transmits like a write.
    pub fn post_send(&mut self, conn: ConnId, bytes: u64) -> Result<MsgId, SendError> {
        let now = self.now();
        let mtu = self.config.mtu;
        let id = self.conns[conn.0 as usize]
            .conn
            .post_send(now, bytes, mtu)?;
        self.pump(conn);
        Ok(id)
    }

    /// Statistics of one connection.
    pub fn conn_stats(&self, conn: ConnId) -> ConnStats {
        self.conns[conn.0 as usize].conn.stats
    }

    /// Aggregate statistics over every connection (field-wise sum).
    pub fn total_stats(&self) -> ConnStats {
        self.conns.iter().map(|c| c.conn.stats).sum()
    }

    /// Lifecycle state of one connection.
    pub fn conn_state(&self, conn: ConnId) -> ConnState {
        self.conns[conn.0 as usize].conn.state
    }

    /// Whether `conn` is fully quiesced: nothing unsent, nothing in
    /// flight, and not waiting on a recovery reconnect.
    pub fn conn_idle(&self, conn: ConnId) -> bool {
        let c = &self.conns[conn.0 as usize].conn;
        c.is_idle() && c.state != ConnState::Recovering
    }

    /// The fatal error that killed `conn`, if it is **terminally**
    /// failed. A connection mid-recovery has no fatal error — the
    /// teardown is transient and [`Connection::fatal`] stays `None`
    /// until the recovery budget is exhausted.
    pub fn conn_error(&self, conn: ConnId) -> Option<FatalError> {
        self.conns[conn.0 as usize].conn.fatal
    }

    /// Number of connections terminally failed ([`ConnState::Error`]).
    /// Connections mid-recovery ([`ConnState::Recovering`]) are **not**
    /// counted — see [`TransportSim::recovering_count`].
    pub fn failed_connections(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| c.conn.state == ConnState::Error)
            .count()
    }

    /// Number of connections currently torn down awaiting a reconnect.
    pub fn recovering_count(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| c.conn.state == ConnState::Recovering)
            .count()
    }

    /// Number of connections in the terminal error state (alias of
    /// [`TransportSim::failed_connections`]).
    pub fn error_count(&self) -> usize {
        self.failed_connections()
    }

    /// The path selector of a connection (distribution inspection).
    pub fn selector(&self, conn: ConnId) -> &PathSelector {
        &self.conns[conn.0 as usize].selector
    }

    /// Histogram of message completion latencies (post → full receipt)
    /// on `conn`, in nanoseconds. Only completed messages contribute.
    pub fn message_latency_histogram(&self, conn: ConnId) -> stellar_sim::stats::Histogram {
        let mut h = stellar_sim::stats::Histogram::new();
        for m in &self.conns[conn.0 as usize].conn.messages {
            if let Some(done) = m.completed_at {
                h.record_duration(done.duration_since(m.posted_at));
            }
        }
        h
    }

    /// Completion time of a message, if it finished.
    pub fn message_completed_at(&self, conn: ConnId, msg: MsgId) -> Option<SimTime> {
        self.conns[conn.0 as usize]
            .conn
            .messages
            .get(msg.0 as usize)
            .and_then(|m| m.completed_at)
    }

    /// Number of open connections.
    pub fn connection_count(&self) -> u32 {
        self.conns.len() as u32
    }

    /// Whether all connections are idle (nothing queued or in flight).
    pub fn all_idle(&self) -> bool {
        self.conns.iter().all(|c| c.conn.is_idle())
    }

    /// Aggregate delivered payload bytes over all connections.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.conn.stats.delivered_bytes)
            .sum()
    }

    /// The RTO for retransmit epoch `epoch`:
    /// `min(rto × rto_backoff^epoch, rto_max)`.
    fn rto_after(&self, epoch: u32) -> SimDuration {
        if self.config.rto_backoff <= 1.0 || epoch == 0 {
            return self.config.rto;
        }
        let scaled =
            self.config.rto.as_nanos() as f64 * self.config.rto_backoff.powi(epoch as i32);
        let capped = scaled.min(self.config.rto_max.as_nanos() as f64);
        SimDuration::from_nanos(capped as u64)
    }

    /// Tear out `conn`'s virtual device from under it — vStellar device
    /// churn (host driver restart, device error, container reschedule).
    /// The connection rides the normal recovery ladder: teardown drain,
    /// backed-off reconnect (whose [`RecoveryPolicy::reestablish`]
    /// should carry the measured device destroy→recreate lifecycle, see
    /// `stellar_core::vstellar::VStellarStack::churn_device`), then
    /// exactly-once replay from the receiver bitmaps. A no-op unless the
    /// connection is Active — churning a connection already recovering
    /// or terminally dead changes nothing.
    ///
    /// # Panics
    /// Panics if no [`RecoveryPolicy`] is configured: device churn
    /// without recovery would silently kill the connection, which is
    /// never what a churn storm intends.
    pub fn device_churn(&mut self, conn: ConnId) {
        assert!(
            self.config.recovery.is_some(),
            "device churn requires a RecoveryPolicy (the churned device must come back)"
        );
        self.fail_connection(conn, FatalError::DeviceChurned);
    }

    /// Tear down `conn` after a fatal error. Without a
    /// [`RecoveryPolicy`] (or once its attempt budget is spent) the
    /// error is terminal: queued and in-flight traffic is discarded
    /// (stale Deliver/Ack/Rto events become no-ops) and the
    /// [`App::on_connection_error`] callback is queued. With a policy
    /// and attempts remaining, the connection enters
    /// [`ConnState::Recovering`] instead: the same teardown drain, but a
    /// reconnect is scheduled after the backed-off delay and nothing is
    /// reported as an error.
    fn fail_connection(&mut self, conn_id: ConnId, error: FatalError) {
        let now = self.now();
        let policy = self.config.recovery.clone();
        let rt = &mut self.conns[conn_id.0 as usize];
        if rt.conn.state != ConnState::Active {
            return;
        }
        rt.conn.unsent.clear();
        rt.conn.inflight.clear();
        rt.conn.inflight_bytes = 0;
        if let Some(policy) = policy {
            if rt.conn.recovery_attempts < policy.max_attempts {
                let attempt = rt.conn.recovery_attempts;
                rt.conn.recovery_attempts += 1;
                rt.conn.state = ConnState::Recovering;
                rt.conn.recovering_since = Some(now);
                count(Subsystem::Transport, "conn.recovering", 1);
                event(
                    now,
                    Subsystem::Transport,
                    Entity::Conn(conn_id.0),
                    "recovering",
                    u64::from(attempt),
                );
                let at = now + policy.reconnect_delay(attempt);
                self.queue.schedule(at, Ev::Reconnect { conn: conn_id });
                return;
            }
        }
        count(Subsystem::Transport, "conn.fatal", 1);
        event(now, Subsystem::Transport, Entity::Conn(conn_id.0), "fatal", 0);
        rt.conn.state = ConnState::Error;
        rt.conn.fatal = Some(error);
        self.errors.push((conn_id, error));
    }

    /// A scheduled reconnect fired: re-establish the QP, rebuild the
    /// send queue from the receiver bitmaps (exactly-once replay — only
    /// the indices that never landed), reset the congestion context (a
    /// fresh QP does not inherit the old window), and resume pumping.
    fn handle_reconnect(&mut self, conn_id: ConnId) {
        let now = self.now();
        let mtu = self.config.mtu;
        let rt = &mut self.conns[conn_id.0 as usize];
        if rt.conn.state != ConnState::Recovering {
            return;
        }
        let downtime = now.saturating_duration_since(
            rt.conn
                .recovering_since
                .expect("recovering connection records its teardown time"),
        );
        rt.conn.state = ConnState::Active;
        rt.conn.recovering_since = None;
        let replayed = rt.conn.replay_unacked(mtu);
        rt.conn.stats.recoveries += 1;
        rt.conn.stats.replayed_packets += replayed;
        for cc in rt.ccs.iter_mut() {
            *cc = CongestionControl::new(self.config.cc.clone());
        }
        rt.pace_until = SimTime::ZERO;
        count(Subsystem::Transport, "conn.recovery", 1);
        count(Subsystem::Transport, "packet.replayed", replayed);
        event(
            now,
            Subsystem::Transport,
            Entity::Conn(conn_id.0),
            "recovered",
            replayed,
        );
        self.recovered.push((conn_id, downtime));
        self.pump(conn_id);
    }

    fn cc_index(&self, conn: ConnId, path: u32) -> usize {
        if self.config.per_path_cc {
            let _ = conn;
            path as usize
        } else {
            0
        }
    }

    /// Pump as many packets as the window allows on `conn`.
    fn pump(&mut self, conn_id: ConnId) {
        let now = self.now();
        let mtu = self.config.mtu;
        let per_path = self.config.per_path_cc;
        let rto = self.config.rto;

        let pace = self.config.pace_gbps;
        loop {
            let rt = &mut self.conns[conn_id.0 as usize];
            if rt.conn.state != ConnState::Active {
                break;
            }
            let Some(&pkt) = rt.conn.unsent.front() else {
                break;
            };
            // Egress pacing gate: wait for the rate limiter.
            if pace.is_some() && rt.pace_until > now {
                if !rt.pace_scheduled {
                    rt.pace_scheduled = true;
                    let at = rt.pace_until;
                    self.queue.schedule(at, Ev::Pace { conn: conn_id });
                }
                break;
            }
            // Shared-CCC window gate.
            if !per_path && !rt.ccs[0].can_send(rt.conn.inflight_bytes, pkt.bytes) {
                break;
            }
            // Path choice, gated per path when each path has its own CCC.
            let path = {
                let ConnRuntime {
                    selector,
                    ccs,
                    inflight_scratch,
                    ..
                } = rt;
                // Snapshot per-path inflight before the mutable select call
                // (reused scratch: the per-packet send path must not
                // allocate).
                inflight_scratch.clear();
                if per_path {
                    inflight_scratch
                        .extend((0..selector.num_paths()).map(|p| selector.path(p).inflight_packets));
                }
                let inflight_pkts: &[u64] = inflight_scratch;
                let allowed = |p: u32| -> bool {
                    if !per_path {
                        return true;
                    }
                    ccs[p as usize].can_send(inflight_pkts[p as usize] * mtu, mtu)
                };
                match selector.select_at(now, None, &allowed) {
                    Some(p) => p,
                    None => break,
                }
            };

            rt.conn.unsent.pop_front();
            let seq = rt.conn.next_seq();
            rt.conn.inflight.insert(
                seq,
                InflightPacket {
                    msg: pkt.msg,
                    idx: pkt.idx,
                    bytes: pkt.bytes,
                    path,
                    sent_at: now,
                    retx: 0,
                },
            );
            rt.conn.inflight_bytes += pkt.bytes;
            rt.conn.stats.sent_packets += 1;
            count(Subsystem::Transport, "packet.sent", 1);
            if let Some(rate) = pace {
                let start = if rt.pace_until > now { rt.pace_until } else { now };
                rt.pace_until = start + stellar_sim::transmit_time(pkt.bytes, rate);
            }
            let (src, dst) = (rt.conn.src, rt.conn.dst);

            let delivery =
                self.network
                    .send(now, src, dst, conn_id.0 as u64, path, pkt.bytes);
            if let Delivery::Delivered { at, ecn } = delivery {
                self.queue.schedule(
                    at,
                    Ev::Deliver {
                        conn: conn_id,
                        seq,
                        ecn,
                    },
                );
            }
            self.queue.schedule(
                now + rto,
                Ev::Rto {
                    conn: conn_id,
                    seq,
                    epoch: 0,
                },
            );
        }
    }

    fn handle_deliver(&mut self, conn_id: ConnId, seq: u64, ecn: bool) {
        let now = self.now();
        let rt = &mut self.conns[conn_id.0 as usize];
        let Some(&pkt) = rt.conn.inflight.get(seq) else {
            // Already ACKed via a retransmitted copy; stale delivery.
            return;
        };
        let msg = rt
            .conn
            .messages
            .get_mut(pkt.msg.0 as usize)
            .expect("inflight packet references a live message");
        if msg.place_packet(pkt.idx) {
            rt.conn.stats.delivered_packets += 1;
            rt.conn.stats.delivered_bytes += pkt.bytes;
            if msg.fully_received() && msg.completed_at.is_none() {
                msg.completed_at = Some(now);
                rt.conn.stats.completed_messages += 1;
                count(Subsystem::Transport, "msg.completed", 1);
                span_close(now, Stage::TransportMsg, msg_span_key(conn_id, pkt.msg));
                self.completions.push((conn_id, pkt.msg));
            }
        }
        // ACK travels back on the prioritized control path.
        let at = now + rt.ack_delay;
        self.queue.schedule(
            at,
            Ev::Ack {
                conn: conn_id,
                seq,
                ecn,
            },
        );
    }

    fn handle_ack(&mut self, conn_id: ConnId, seq: u64, ecn: bool) {
        let now = self.now();
        
        let (path, rtt, bytes);
        {
            let rt = &mut self.conns[conn_id.0 as usize];
            let Some(pkt) = rt.conn.inflight.remove(seq) else {
                return; // duplicate ACK (original + retransmission)
            };
            rt.conn.inflight_bytes -= pkt.bytes;
            path = pkt.path;
            bytes = pkt.bytes;
            rtt = now.saturating_duration_since(pkt.sent_at);
            // A delivered+acked packet proves the connection works:
            // reset the consecutive-recovery backoff ladder.
            rt.conn.recovery_attempts = 0;
            rt.conn.stats.acks += 1;
            count(Subsystem::Transport, "ack", 1);
            stage_sample(Stage::TransportRtt, rtt);
            if ecn {
                rt.conn.stats.ecn_acks += 1;
            }
            if let Some(m) = rt.conn.messages.get_mut(pkt.msg.0 as usize) {
                m.acked_packets += 1;
            }
            rt.selector.on_ack(path, rtt, ecn);
        }
        let cc_idx = self.cc_index(conn_id, path);
        self.conns[conn_id.0 as usize].ccs[cc_idx].on_ack(now, bytes, rtt, ecn);
        self.pump(conn_id);
    }

    fn handle_rto(&mut self, conn_id: ConnId, seq: u64, epoch: u32) {
        let now = self.now();

        let (old_path, new_path, bytes, src, dst);
        {
            let rt = &mut self.conns[conn_id.0 as usize];
            let Some(pkt) = rt.conn.inflight.get(seq) else {
                return; // ACKed in the meantime (or the connection died)
            };
            if pkt.retx != epoch {
                return; // a newer transmission owns the timer
            }
            // Retry budget: a packet that times out this many times in a
            // row means the peer is unreachable on every path tried — a
            // terminal QP error, not another retransmission.
            if pkt.retx >= self.config.retry_budget {
                let retries = pkt.retx;
                self.fail_connection(
                    conn_id,
                    FatalError::RetryBudgetExhausted { seq, retries },
                );
                return;
            }
            old_path = pkt.path;
            bytes = pkt.bytes;
            src = rt.conn.src;
            dst = rt.conn.dst;
            rt.conn.stats.rto_events += 1;
            count(Subsystem::Transport, "rto", 1);
            event(now, Subsystem::Transport, Entity::Conn(conn_id.0), "rto", u64::from(epoch));
            // Feed the loss scoreboard: repeated losses blacklist the path.
            rt.selector.on_loss_at(now, old_path);
            // Retransmit on a different path for instant recovery.
            new_path = rt
                .selector
                .select_at(now, Some(old_path), &|_| true)
                .unwrap_or(old_path);
            let pkt = rt.conn.inflight.get_mut(seq).unwrap();
            pkt.retx += 1;
            pkt.sent_at = now;
            pkt.path = new_path;
            rt.conn.stats.retransmits += 1;
            count(Subsystem::Transport, "retransmit", 1);
            // The budget gate above must fire before a packet's retx count
            // can pass the budget; checking at the increment (not just at
            // end-of-run quiesce) catches a broken gate in the transient
            // window before the connection is torn down.
            if stellar_check::enabled() {
                let retx = pkt.retx;
                stellar_check::at_quiesce(now, stellar_check::Layer::Transport, |c| {
                    c.check(
                        "transport.retry_budget",
                        retx <= self.config.retry_budget,
                        || {
                            format!(
                                "conn {}: packet seq {seq} retransmitted {retx} times, budget {}",
                                conn_id.0, self.config.retry_budget
                            )
                        },
                    );
                });
            }
        }
        let cc_idx = self.cc_index(conn_id, old_path);
        let share = if self.config.per_path_cc {
            1.0
        } else {
            1.0 / self.config.num_paths as f64
        };
        self.conns[conn_id.0 as usize].ccs[cc_idx].on_rto(share);

        let delivery = self
            .network
            .send(now, src, dst, conn_id.0 as u64, new_path, bytes);
        if let Delivery::Delivered { at, ecn } = delivery {
            self.queue.schedule(
                at,
                Ev::Deliver {
                    conn: conn_id,
                    seq,
                    ecn,
                },
            );
        }
        // Exponential backoff: each retransmit epoch waits longer (up to
        // rto_max) before declaring the copy lost.
        self.queue.schedule(
            now + self.rto_after(epoch + 1),
            Ev::Rto {
                conn: conn_id,
                seq,
                epoch: epoch + 1,
            },
        );
    }

    /// Process events until the queue drains or the next event is past
    /// `until`. Completion callbacks run in causal order.
    pub fn run<A: App<F>>(&mut self, app: &mut A, until: SimTime) {
        // Batched same-timestamp drain: the wheel hands over every event at
        // the next timestamp in one call, so the hot loop runs one
        // peek/advance per *timestamp* instead of per event. Handlers that
        // schedule new events at the drained timestamp (zero-latency hops)
        // produce a fresh batch on the next iteration, with higher FIFO
        // seqs — exactly the order per-event pops would have delivered.
        let mut batch = std::mem::take(&mut self.batch_buf);
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {}
                _ => break,
            }
            batch.clear();
            self.queue
                .pop_batch(&mut batch)
                .expect("peeked event exists");
            for ev in batch.drain(..) {
                match ev {
                    Ev::Deliver { conn, seq, ecn } => self.handle_deliver(conn, seq, ecn),
                    Ev::Ack { conn, seq, ecn } => self.handle_ack(conn, seq, ecn),
                    Ev::Rto { conn, seq, epoch } => self.handle_rto(conn, seq, epoch),
                    Ev::Pace { conn } => {
                        self.conns[conn.0 as usize].pace_scheduled = false;
                        self.pump(conn);
                    }
                    Ev::AppTimer { token } => app.on_timer(self, token),
                    Ev::Reconnect { conn } => self.handle_reconnect(conn),
                }
                // Callbacks run after every event, exactly as the
                // unbatched loop did — batching may never reorder an
                // event relative to the completions it caused.
                while let Some((c, m)) = pop_front(&mut self.completions) {
                    app.on_message_complete(self, c, m);
                }
                while let Some((c, e)) = pop_front(&mut self.errors) {
                    app.on_connection_error(self, c, e);
                }
                while let Some((c, d)) = pop_front(&mut self.recovered) {
                    app.on_connection_recovered(self, c, d);
                }
            }
        }
        self.batch_buf = batch;
        // Returning from `run` is a quiesce point: nothing is mid-event,
        // so every cross-layer ledger must balance.
        if stellar_check::enabled() {
            self.check_invariants(self.now());
        }
    }

    /// Run until every connection is idle (or `hard_stop` is reached).
    pub fn run_to_idle<A: App<F>>(&mut self, app: &mut A, hard_stop: SimTime) {
        self.run(app, hard_stop);
    }

    /// Run the transport conservation invariants at a quiesce point
    /// (no-op unless a `stellar_check` scope is active). Called
    /// automatically when [`TransportSim::run`] returns; also callable
    /// directly from tests. Cascades into the fabric's own checks.
    pub fn check_invariants(&self, at: SimTime) {
        stellar_check::at_quiesce(at, stellar_check::Layer::Transport, |c| {
            let drained = self.queue.is_empty();
            for rt in &self.conns {
                let conn = &rt.conn;
                let id = conn.id.0;
                let actual: u64 = conn.inflight.values().map(|p| p.bytes).sum();
                c.check(
                    "transport.inflight_bytes",
                    conn.inflight_bytes == actual,
                    || {
                        format!(
                            "conn {id}: window gauge {} != sum of in-flight packets {}",
                            conn.inflight_bytes, actual
                        )
                    },
                );
                let worst = conn.inflight.values().map(|p| p.retx).max().unwrap_or(0);
                c.check(
                    "transport.retry_budget",
                    worst <= self.config.retry_budget,
                    || {
                        format!(
                            "conn {id}: packet retransmitted {worst} times, budget {}",
                            self.config.retry_budget
                        )
                    },
                );
                let st = &conn.stats;
                c.check(
                    "transport.stats_conservation",
                    st.delivered_packets <= st.sent_packets
                        && st.acks <= st.sent_packets + st.retransmits
                        && st.ecn_acks <= st.acks,
                    || format!("conn {id}: counters out of balance: {st:?}"),
                );
                // Exactly-once across any number of recoveries: the
                // receiver bitmaps count each packet exactly once, so
                // their population must equal the deduplicated delivered
                // counter (a replayed duplicate that slipped past the
                // bitmap would inflate it), completion flags must match
                // the completion counter, and — at a drained queue with
                // the connection alive — nothing may be lost: every
                // posted message has a full bitmap.
                let placed: u64 = conn.messages.iter().map(|m| m.received_count()).sum();
                let completed = conn
                    .messages
                    .iter()
                    .filter(|m| m.completed_at.is_some())
                    .count() as u64;
                let no_loss = !drained
                    || conn.state != ConnState::Active
                    || conn.messages.iter().all(|m| m.completed_at.is_some());
                c.check(
                    "transport.recovery_exactly_once",
                    placed == st.delivered_packets
                        && completed == st.completed_messages
                        && no_loss,
                    || {
                        format!(
                            "conn {id}: bitmap placements {placed} vs delivered {}, \
                             completed bitmaps {completed} vs counter {}, lost messages: {}",
                            st.delivered_packets,
                            st.completed_messages,
                            conn.messages
                                .iter()
                                .filter(|m| m.completed_at.is_none())
                                .count()
                        )
                    },
                );
                // With the event queue drained nothing can make further
                // progress, so every connection must be at rest: idle if
                // Active, fully torn down if Error — and never stuck in
                // Recovering (a pending reconnect is a queued event, so
                // a drained queue with a Recovering connection means the
                // reconnect was lost).
                if drained {
                    let at_rest = conn.unsent.is_empty()
                        && conn.inflight.is_empty()
                        && conn.state != ConnState::Recovering
                        && (conn.state == ConnState::Active || conn.inflight_bytes == 0);
                    c.check("transport.idle_quiescence", at_rest, || {
                        format!(
                            "conn {id}: event queue drained but work remains \
                             ({} unsent, {} in flight, state {:?})",
                            conn.unsent.len(),
                            conn.inflight.len(),
                            conn.state
                        )
                    });
                }
            }
        });
        // The path layer's readmission law is a Net-layer invariant (it
        // governs which fabric paths traffic may use), issued from here
        // because the selectors live with the connections.
        stellar_check::at_quiesce(at, stellar_check::Layer::Net, |c| {
            for rt in &self.conns {
                let id = rt.conn.id.0;
                let sel = &rt.selector;
                c.check(
                    "net.blacklist_readmit",
                    sel.readmission_bounded(at),
                    || {
                        format!(
                            "conn {id}: a blacklisted path or quarantined plane has an \
                             unbounded readmission deadline (exiled forever)"
                        )
                    },
                );
            }
        });
        self.network.check_invariants(at);
    }
}

fn pop_front<T>(v: &mut Vec<T>) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_net::{ClosConfig, ClosTopology, NetworkConfig};

    fn make_sim(algo: PathAlgo, num_paths: u32, seed: u64) -> TransportSim {
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        });
        let rng = SimRng::from_seed(seed);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        TransportSim::new(
            network,
            TransportConfig {
                algo,
                num_paths,
                ..TransportConfig::default()
            },
            rng.fork("transport"),
        )
    }

    const FOREVER: SimTime = SimTime::from_nanos(u64::MAX / 2);

    #[test]
    fn single_message_completes() {
        let mut sim = make_sim(PathAlgo::Obs, 128, 1);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 1024 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        let done = sim.message_completed_at(conn, msg).expect("completed");
        assert!(done > SimTime::ZERO);
        let st = sim.conn_stats(conn);
        assert_eq!(st.delivered_bytes, 1024 * 1024);
        assert_eq!(st.completed_messages, 1);
        assert!(sim.all_idle());
    }

    /// `reset` restores every queue observable — `now`, the
    /// `scheduled_total` counter behind [`TransportSim::events_scheduled`]
    /// and the `peak_len` high-water mark behind
    /// [`TransportSim::queue_peak_len`] — to its initial state
    /// (`EventQueue::clear` semantics), and a reset sim replays a
    /// workload to the exact same schedule as a freshly constructed one.
    #[test]
    fn reset_restores_queue_observables_and_replays_identically() {
        let run = |sim: &mut TransportSim| {
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 256 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            (
                sim.message_completed_at(conn, msg).expect("completed"),
                sim.events_scheduled(),
                sim.queue_peak_len(),
            )
        };
        let mut sim = make_sim(PathAlgo::Obs, 8, 5);
        let first = run(&mut sim);
        assert!(first.1 > 0 && first.2 > 0);
        assert!(sim.now() > SimTime::ZERO);

        // Rebuild the exact network + RNG streams the constructor used.
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        });
        let rng = SimRng::from_seed(5);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        sim.reset(network, rng.fork("transport"));
        assert_eq!(sim.now(), SimTime::ZERO, "reset must rewind the clock");
        assert_eq!(sim.events_scheduled(), 0, "reset must zero scheduled_total");
        assert_eq!(sim.queue_peak_len(), 0, "reset must zero peak_len");

        let second = run(&mut sim);
        assert_eq!(
            first, second,
            "a reset sim must be observably identical to a fresh one"
        );
    }

    #[test]
    fn throughput_near_line_rate_for_big_transfer() {
        let mut sim = make_sim(PathAlgo::Obs, 128, 2);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        let bytes = 64 * 1024 * 1024u64;
        let msg = sim.post_message(conn, bytes);
        sim.run(&mut NoopApp, FOREVER);
        let done = sim.message_completed_at(conn, msg).unwrap();
        let gbps = stellar_sim::stats::gbps(bytes, done.duration_since(SimTime::ZERO));
        // 200 Gbps links; expect well over half of line rate.
        assert!(gbps > 120.0, "gbps={gbps}");
    }

    #[test]
    fn spray_uses_many_paths_single_uses_one() {
        let mut spray = make_sim(PathAlgo::Obs, 128, 3);
        let src = spray.network().topology().nic(0, 0);
        let dst = spray.network().topology().nic(4, 0);
        let c = spray.add_connection(src, dst);
        spray.post_message(c, 8 * 1024 * 1024);
        spray.run(&mut NoopApp, FOREVER);
        assert!(spray.selector(c).active_paths() > 64);

        let mut single = make_sim(PathAlgo::SinglePath, 128, 3);
        let c2 = single.add_connection(src, dst);
        single.post_message(c2, 8 * 1024 * 1024);
        single.run(&mut NoopApp, FOREVER);
        assert_eq!(single.selector(c2).active_paths(), 1);
    }

    #[test]
    fn loss_is_recovered_by_rto_on_other_paths() {
        let mut sim = make_sim(PathAlgo::Obs, 128, 4);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        // 1% loss on one agg uplink used by some paths.
        let link = sim.network().topology().route(src, dst, 0, 0)[1];
        sim.network_mut().set_loss(link, 0.01);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 16 * 1024 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, msg).is_some());
        let st = sim.conn_stats(conn);
        assert_eq!(st.delivered_bytes, 16 * 1024 * 1024);
    }

    #[test]
    fn total_link_failure_recovers_via_path_exclusion() {
        let mut sim = make_sim(PathAlgo::Obs, 128, 5);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let link = sim.network().topology().route(src, dst, 0, 7)[1];
        sim.network_mut().set_link_up(link, false);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 4 * 1024 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, msg).is_some());
        assert!(sim.conn_stats(conn).retransmits > 0);
    }

    #[test]
    fn congestion_marks_shrink_window() {
        // Many connections into one destination NIC (incast): queues grow,
        // ECN fires, windows shrink, everything still completes.
        let mut sim = make_sim(PathAlgo::Obs, 128, 6);
        let dst = sim.network().topology().nic(0, 0);
        let mut conns = Vec::new();
        for h in 1..8 {
            let src = sim.network().topology().nic(h, 0);
            let c = sim.add_connection(src, dst);
            sim.post_message(c, 4 * 1024 * 1024);
            conns.push(c);
        }
        sim.run(&mut NoopApp, FOREVER);
        let total_ecn: u64 = conns.iter().map(|&c| sim.conn_stats(c).ecn_acks).sum();
        assert!(total_ecn > 0, "incast must trigger ECN");
        for &c in &conns {
            assert_eq!(sim.conn_stats(c).delivered_bytes, 4 * 1024 * 1024);
        }
    }

    #[test]
    fn app_callback_chains_messages() {
        struct Chain {
            remaining: u32,
            completions: u32,
        }
        impl App for Chain {
            fn on_message_complete(&mut self, sim: &mut TransportSim, conn: ConnId, _m: MsgId) {
                self.completions += 1;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    sim.post_message(conn, 256 * 1024);
                }
            }
        }
        let mut sim = make_sim(PathAlgo::RoundRobin, 16, 7);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        sim.post_message(conn, 256 * 1024);
        let mut app = Chain {
            remaining: 9,
            completions: 0,
        };
        sim.run(&mut app, FOREVER);
        assert_eq!(app.completions, 10);
        assert_eq!(sim.conn_stats(conn).completed_messages, 10);
    }

    #[test]
    fn per_path_cc_also_completes() {
        let topo_sim = |per_path: bool| -> u64 {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 2,
                rails: 1,
                planes: 2,
                aggs_per_plane: 2,
            });
            let rng = SimRng::from_seed(8);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            let mut sim = TransportSim::new(
                network,
                TransportConfig {
                    algo: PathAlgo::Obs,
                    num_paths: 4,
                    per_path_cc: per_path,
                    ..TransportConfig::default()
                },
                rng.fork("t"),
            );
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(2, 0);
            let c = sim.add_connection(src, dst);
            sim.post_message(c, 8 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            sim.conn_stats(c).delivered_bytes
        };
        assert_eq!(topo_sim(false), 8 * 1024 * 1024);
        assert_eq!(topo_sim(true), 8 * 1024 * 1024);
    }

    #[test]
    fn two_sided_send_recv_end_to_end() {
        let mut sim = make_sim(PathAlgo::Obs, 32, 11);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        // RNR before any recv is posted.
        assert!(matches!(
            sim.post_send(conn, 4096),
            Err(crate::conn::SendError::ReceiverNotReady)
        ));
        assert_eq!(sim.conn_stats(conn).rnr_naks, 1);
        // Post receives, then sends flow like writes.
        sim.post_recv(conn, 1 << 20);
        sim.post_recv(conn, 1 << 20);
        let m1 = sim.post_send(conn, 256 * 1024).unwrap();
        let m2 = sim.post_send(conn, 512 * 1024).unwrap();
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, m1).is_some());
        assert!(sim.message_completed_at(conn, m2).is_some());
        assert_eq!(sim.conn_stats(conn).delivered_bytes, 768 * 1024);
    }

    #[test]
    fn pacing_stretches_transmission_to_the_configured_rate() {
        let run = |pace: Option<f64>| -> u64 {
            let topo = ClosTopology::build(ClosConfig {
                segments: 1,
                hosts_per_segment: 2,
                rails: 1,
                planes: 1,
                aggs_per_plane: 1,
            });
            let rng = SimRng::from_seed(3);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            let mut sim = TransportSim::new(
                network,
                TransportConfig {
                    pace_gbps: pace,
                    ..TransportConfig::default()
                },
                rng.fork("t"),
            );
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(1, 0);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 4 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            sim.message_completed_at(conn, msg).unwrap().as_nanos()
        };
        let unpaced = run(None);
        let paced_50g = run(Some(50.0));
        // 4 MB at 50 Gbps ≈ 671 µs; the unpaced transfer rides the
        // 200 Gbps link.
        assert!(paced_50g > unpaced * 2, "paced {paced_50g} unpaced {unpaced}");
        let expect_ns = 4.0 * 1024.0 * 1024.0 * 8.0 / 50.0;
        let ratio = paced_50g as f64 / expect_ns;
        assert!((0.9..1.3).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn flowlet_transport_completes_and_uses_multiple_paths() {
        let mut sim = make_sim(
            PathAlgo::Flowlet {
                gap: SimDuration::from_micros(20),
            },
            64,
            12,
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        // Several messages with idle gaps between them -> several flowlets.
        struct Gapped {
            remaining: u32,
        }
        impl App for Gapped {
            fn on_message_complete(&mut self, sim: &mut TransportSim, _c: ConnId, _m: MsgId) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    let at = sim.now() + SimDuration::from_micros(100);
                    sim.schedule_timer(at, 0);
                }
            }
            fn on_timer(&mut self, sim: &mut TransportSim, _t: u64) {
                sim.post_message(ConnId(0), 256 * 1024);
            }
        }
        sim.post_message(conn, 256 * 1024);
        let mut app = Gapped { remaining: 12 };
        sim.run(&mut app, FOREVER);
        assert_eq!(sim.conn_stats(conn).completed_messages, 13);
        let active = sim.selector(conn).active_paths();
        assert!(active > 3, "flowlets must spread: {active}");
    }

    #[test]
    fn latency_histogram_reflects_message_sizes() {
        let mut sim = make_sim(PathAlgo::Obs, 32, 13);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        for _ in 0..4 {
            sim.post_message(conn, 16 * 1024);
        }
        sim.run(&mut NoopApp, FOREVER);
        sim.post_message(conn, 8 * 1024 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        let p = sim.message_latency_histogram(conn).percentiles();
        assert_eq!(p.count(), 5);
        // The big message is the tail.
        let p50 = p.p50().unwrap();
        let max = p.max().unwrap();
        assert!(max > p50 * 10, "p50={p50} max={max}");
    }

    #[test]
    fn rto_backoff_grows_and_caps() {
        let sim = make_sim(PathAlgo::Obs, 4, 1);
        // Defaults: rto 250 µs, backoff 2.0, cap 4 ms.
        assert_eq!(sim.rto_after(0), SimDuration::from_micros(250));
        assert_eq!(sim.rto_after(1), SimDuration::from_micros(500));
        assert_eq!(sim.rto_after(2), SimDuration::from_micros(1000));
        assert_eq!(sim.rto_after(4), SimDuration::from_millis(4));
        assert_eq!(sim.rto_after(30), SimDuration::from_millis(4));
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_error() {
        // Cut the destination NIC off entirely (both planes) with slow
        // BGP so no reroute ever helps: the retry budget must trip and
        // the connection must die instead of retransmitting forever.
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        });
        let rng = SimRng::from_seed(9);
        let net_cfg = NetworkConfig {
            bgp_convergence: SimDuration::from_millis(10_000),
            ..NetworkConfig::default()
        };
        let network = Network::new(topo, net_cfg, rng.fork("net"));
        let mut sim = TransportSim::new(
            network,
            TransportConfig {
                algo: PathAlgo::Obs,
                num_paths: 32,
                retry_budget: 6,
                ..TransportConfig::default()
            },
            rng.fork("t"),
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        for plane in 0..2 {
            let (up, down) = sim.network().topology().nic_port_links(dst, plane);
            sim.network_mut().set_link_up(up, false);
            sim.network_mut().set_link_up(down, false);
        }
        struct Watch {
            errors: Vec<(ConnId, FatalError)>,
        }
        impl App for Watch {
            fn on_message_complete(&mut self, _s: &mut TransportSim, _c: ConnId, _m: MsgId) {}
            fn on_connection_error(
                &mut self,
                _s: &mut TransportSim,
                c: ConnId,
                e: FatalError,
            ) {
                self.errors.push((c, e));
            }
        }
        sim.post_message(conn, 64 * 1024);
        let mut app = Watch { errors: Vec::new() };
        sim.run(&mut app, FOREVER);
        assert_eq!(sim.conn_state(conn), ConnState::Error);
        assert_eq!(sim.error_count(), 1);
        assert_eq!(app.errors.len(), 1);
        let (c, e) = app.errors[0];
        assert_eq!(c, conn);
        assert!(matches!(
            e,
            FatalError::RetryBudgetExhausted { retries: 6, .. }
        ));
        assert_eq!(sim.conn_error(conn), Some(e));
        // Teardown discarded the traffic: the sim is idle, not stuck.
        assert!(sim.all_idle());
        // The budget bounds every packet's retransmissions.
        assert!(sim.conn_stats(conn).retransmits <= 6 * 17);
    }

    #[test]
    fn scoreboard_blacklists_paths_crossing_a_dead_link() {
        let mut sim = make_sim(PathAlgo::Obs, 64, 14);
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        // Kill one NIC uplink (plane 0) with slow BGP: roughly half the
        // paths cross it and keep losing until blacklisted.
        let (up, _) = sim.network().topology().nic_port_links(src, 0);
        sim.network_mut().config_mut().bgp_convergence = SimDuration::from_millis(10_000);
        sim.network_mut().set_link_up(up, false);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 8 * 1024 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, msg).is_some());
        // At some point during the run, paths were blacklisted (they may
        // have expired since; check the scoreboard high-water mark via
        // consecutive_losses on plane-0 paths).
        let sel = sim.selector(conn);
        let poisoned = (0..sel.num_paths())
            .filter(|&p| sel.path(p).consecutive_losses >= 2 || sel.path(p).blacklisted_until > SimTime::ZERO)
            .count();
        assert!(poisoned > 0, "dead-plane paths must hit the scoreboard");
    }

    #[test]
    fn total_stats_matches_per_conn_sum() {
        let mut sim = make_sim(PathAlgo::Obs, 32, 15);
        let dst = sim.network().topology().nic(0, 0);
        let mut conns = Vec::new();
        for h in 1..4 {
            let src = sim.network().topology().nic(h, 0);
            let c = sim.add_connection(src, dst);
            sim.post_message(c, 1024 * 1024);
            conns.push(c);
        }
        sim.run(&mut NoopApp, FOREVER);
        let total = sim.total_stats();
        let by_hand: u64 = conns.iter().map(|&c| sim.conn_stats(c).delivered_bytes).sum();
        assert_eq!(total.delivered_bytes, by_hand);
        assert_eq!(total.delivered_bytes, 3 * 1024 * 1024);
        let acks: u64 = conns.iter().map(|&c| sim.conn_stats(c).acks).sum();
        assert_eq!(total.acks, acks);
    }

    #[test]
    fn backoff_disabled_matches_fixed_rto() {
        let sim = {
            let topo = ClosTopology::build(ClosConfig {
                segments: 1,
                hosts_per_segment: 2,
                rails: 1,
                planes: 1,
                aggs_per_plane: 1,
            });
            let rng = SimRng::from_seed(2);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            TransportSim::new(
                network,
                TransportConfig {
                    rto_backoff: 1.0,
                    ..TransportConfig::default()
                },
                rng.fork("t"),
            )
        };
        for epoch in 0..10 {
            assert_eq!(sim.rto_after(epoch), sim.config().rto);
        }
    }

    #[test]
    fn reset_sim_is_observably_identical_to_fresh() {
        let topo_cfg = ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        };
        let run = |sim: &mut TransportSim| -> (u64, u64, u64) {
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 4 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            let st = sim.conn_stats(conn);
            (
                sim.message_completed_at(conn, msg).unwrap().as_nanos(),
                st.sent_packets,
                st.ecn_acks,
            )
        };
        // Fresh sim, seed 21.
        let mut fresh = make_sim(PathAlgo::Obs, 128, 21);
        let fresh_result = run(&mut fresh);
        // A sim that already ran seed 42, reset onto seed 21's fabric.
        let mut recycled = make_sim(PathAlgo::Obs, 128, 42);
        run(&mut recycled);
        let rng = SimRng::from_seed(21);
        let network = Network::new(
            ClosTopology::build(topo_cfg),
            NetworkConfig::default(),
            rng.fork("net"),
        );
        recycled.reset(network, rng.fork("transport"));
        assert_eq!(recycled.connection_count(), 0);
        assert_eq!(recycled.now(), SimTime::ZERO);
        assert_eq!(run(&mut recycled), fresh_result);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || -> (u64, u64, u64) {
            let mut sim = make_sim(PathAlgo::Obs, 128, 42);
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 8 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            let st = sim.conn_stats(conn);
            (
                sim.message_completed_at(conn, msg).unwrap().as_nanos(),
                st.sent_packets,
                st.ecn_acks,
            )
        };
        assert_eq!(run(), run());
    }

    /// Every `run` return is a quiesce point under `stellar_check`: a
    /// lossy transfer (drops, RTOs, retransmissions) and a torn-down
    /// connection must both leave every transport and fabric ledger
    /// balanced.
    #[test]
    fn invariants_hold_across_loss_and_connection_teardown() {
        stellar_check::strict(|| {
            // Lossy but recoverable transfer.
            let mut sim = make_sim(PathAlgo::Obs, 128, 4);
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let link = sim.network().topology().route(src, dst, 0, 0)[1];
            sim.network_mut().set_loss(link, 0.02);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 8 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            assert!(sim.message_completed_at(conn, msg).is_some());

            // Unreachable peer: the connection dies, and the torn-down
            // state must still satisfy idle quiescence.
            let mut dead = make_sim(PathAlgo::Obs, 32, 9);
            let src = dead.network().topology().nic(0, 0);
            let dst = dead.network().topology().nic(4, 0);
            dead.network_mut().config_mut().bgp_convergence =
                SimDuration::from_millis(10_000);
            for plane in 0..2 {
                let (up, down) = dead.network().topology().nic_port_links(dst, plane);
                dead.network_mut().set_link_up(up, false);
                dead.network_mut().set_link_up(down, false);
            }
            let conn = dead.add_connection(src, dst);
            dead.post_message(conn, 64 * 1024);
            dead.run(&mut NoopApp, FOREVER);
            assert_eq!(dead.conn_state(conn), ConnState::Error);
        });
    }

    /// The full recovery cycle: an unreachable peer trips the retry
    /// budget, the connection tears down and recovers (repeatedly, up
    /// the backoff ladder) until a timer restores the links — then the
    /// replay delivers every remaining byte exactly once.
    #[test]
    fn recovery_reestablishes_and_replays_exactly_once() {
        stellar_check::strict(|| {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 4,
                rails: 1,
                planes: 2,
                aggs_per_plane: 8,
            });
            let rng = SimRng::from_seed(9);
            let net_cfg = NetworkConfig {
                bgp_convergence: SimDuration::from_millis(10_000),
                ..NetworkConfig::default()
            };
            let network = Network::new(topo, net_cfg, rng.fork("net"));
            let mut sim = TransportSim::new(
                network,
                TransportConfig {
                    algo: PathAlgo::Obs,
                    num_paths: 32,
                    retry_budget: 6,
                    recovery: Some(RecoveryPolicy::default()),
                    ..TransportConfig::default()
                },
                rng.fork("t"),
            );
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let conn = sim.add_connection(src, dst);
            let mut dead_links = Vec::new();
            for plane in 0..2 {
                let (up, down) = sim.network().topology().nic_port_links(dst, plane);
                sim.network_mut().set_link_up(up, false);
                sim.network_mut().set_link_up(down, false);
                dead_links.push(up);
                dead_links.push(down);
            }
            struct Restore {
                links: Vec<stellar_net::LinkId>,
                recoveries: u32,
                errors: u32,
                min_downtime: SimDuration,
            }
            impl App for Restore {
                fn on_message_complete(&mut self, _s: &mut TransportSim, _c: ConnId, _m: MsgId) {}
                fn on_timer(&mut self, sim: &mut TransportSim, _t: u64) {
                    let now = sim.now();
                    for &l in &self.links {
                        sim.network_mut().set_link_state_at(now, l, true);
                    }
                }
                fn on_connection_error(&mut self, _s: &mut TransportSim, _c: ConnId, _e: FatalError) {
                    self.errors += 1;
                }
                fn on_connection_recovered(
                    &mut self,
                    _s: &mut TransportSim,
                    _c: ConnId,
                    downtime: SimDuration,
                ) {
                    self.recoveries += 1;
                    if downtime < self.min_downtime {
                        self.min_downtime = downtime;
                    }
                }
            }
            let msg = sim.post_message(conn, 64 * 1024);
            sim.schedule_timer(SimTime::from_nanos(20_000_000), 0); // 20 ms
            let mut app = Restore {
                links: dead_links,
                recoveries: 0,
                errors: 0,
                min_downtime: SimDuration::from_nanos(u64::MAX),
            };
            sim.run(&mut app, FOREVER);

            assert!(sim.message_completed_at(conn, msg).is_some(), "message survives");
            assert_eq!(sim.conn_state(conn), ConnState::Active);
            assert_eq!(sim.failed_connections(), 0);
            assert_eq!(sim.recovering_count(), 0);
            assert_eq!(app.errors, 0, "recovery must absorb the fatal error");
            let st = sim.conn_stats(conn);
            assert!(app.recoveries >= 1, "at least one recovery cycle ran");
            assert_eq!(u64::from(app.recoveries), st.recoveries);
            assert!(st.replayed_packets >= 16, "the 16-packet message was replayed");
            // Exactly once: every byte delivered once, no duplicates
            // counted, exactly one completion.
            assert_eq!(st.delivered_bytes, 64 * 1024);
            assert_eq!(st.delivered_packets, 16);
            assert_eq!(st.completed_messages, 1);
            // Downtime includes at least the base reconnect delay.
            assert!(
                app.min_downtime >= RecoveryPolicy::default().reconnect_delay(0),
                "downtime {:?} below the reconnect delay",
                app.min_downtime
            );
            assert!(sim.all_idle());
        });
    }

    /// Exhausting `max_attempts` consecutive recoveries makes the error
    /// terminal: the app sees `on_connection_error`, not an infinite
    /// reconnect loop.
    #[test]
    fn recovery_budget_exhaustion_is_terminal() {
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        });
        let rng = SimRng::from_seed(9);
        let net_cfg = NetworkConfig {
            bgp_convergence: SimDuration::from_millis(10_000),
            ..NetworkConfig::default()
        };
        let network = Network::new(topo, net_cfg, rng.fork("net"));
        let mut sim = TransportSim::new(
            network,
            TransportConfig {
                algo: PathAlgo::Obs,
                num_paths: 32,
                retry_budget: 6,
                recovery: Some(RecoveryPolicy {
                    max_attempts: 2,
                    ..RecoveryPolicy::default()
                }),
                ..TransportConfig::default()
            },
            rng.fork("t"),
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(4, 0);
        let conn = sim.add_connection(src, dst);
        for plane in 0..2 {
            let (up, down) = sim.network().topology().nic_port_links(dst, plane);
            sim.network_mut().set_link_up(up, false);
            sim.network_mut().set_link_up(down, false);
        }
        struct Watch {
            errors: u32,
            recoveries: u32,
        }
        impl App for Watch {
            fn on_message_complete(&mut self, _s: &mut TransportSim, _c: ConnId, _m: MsgId) {}
            fn on_connection_error(&mut self, _s: &mut TransportSim, _c: ConnId, _e: FatalError) {
                self.errors += 1;
            }
            fn on_connection_recovered(
                &mut self,
                _s: &mut TransportSim,
                _c: ConnId,
                _d: SimDuration,
            ) {
                self.recoveries += 1;
            }
        }
        sim.post_message(conn, 64 * 1024);
        let mut app = Watch {
            errors: 0,
            recoveries: 0,
        };
        sim.run(&mut app, FOREVER);
        assert_eq!(sim.conn_state(conn), ConnState::Error);
        assert_eq!(sim.failed_connections(), 1);
        assert_eq!(app.errors, 1);
        assert_eq!(app.recoveries, 2, "both attempts ran before giving up");
        assert!(sim.conn_error(conn).is_some());
        assert!(sim.all_idle());
    }

    /// Recovery enabled on a fault-free run is a pure no-op: the policy
    /// draws no RNG and schedules nothing until a failure occurs, so the
    /// runs are observably identical (the golden-corpus guarantee).
    #[test]
    fn fault_free_run_is_identical_with_recovery_enabled() {
        let run = |recovery: Option<RecoveryPolicy>| {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 4,
                rails: 1,
                planes: 2,
                aggs_per_plane: 8,
            });
            let rng = SimRng::from_seed(17);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            let mut sim = TransportSim::new(
                network,
                TransportConfig {
                    recovery,
                    ..TransportConfig::default()
                },
                rng.fork("transport"),
            );
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let conn = sim.add_connection(src, dst);
            let msg = sim.post_message(conn, 4 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            (
                sim.message_completed_at(conn, msg).unwrap().as_nanos(),
                sim.total_stats(),
                sim.events_scheduled(),
            )
        };
        assert_eq!(run(None), run(Some(RecoveryPolicy::default())));
    }

    #[test]
    fn reconnect_delay_backs_off_and_caps() {
        let p = RecoveryPolicy::default();
        // base 1 ms, mult 2.0, cap 100 ms, reestablish 120 µs.
        let re = SimDuration::from_micros(120);
        assert_eq!(p.reconnect_delay(0), SimDuration::from_millis(1) + re);
        assert_eq!(p.reconnect_delay(1), SimDuration::from_millis(2) + re);
        assert_eq!(p.reconnect_delay(3), SimDuration::from_millis(8) + re);
        assert_eq!(p.reconnect_delay(30), SimDuration::from_millis(100) + re);
    }

    /// The telemetry hub is a mirror, not a second bookkeeper: every
    /// counter it holds must equal the native statistic recorded at the
    /// same site — no double counting, no missed site. Runs a lossy
    /// transfer so drops, RTOs and retransmissions all fire.
    #[test]
    fn telemetry_hub_matches_native_statistics() {
        use stellar_net::DropReason;
        use stellar_telemetry::{capture, Subsystem, TelemetryConfig};

        let ((stats, drops), tel) = capture(TelemetryConfig::default(), || {
            let mut sim = make_sim(PathAlgo::Obs, 128, 4);
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(4, 0);
            let link = sim.network().topology().route(src, dst, 0, 0)[1];
            sim.network_mut().set_loss(link, 0.02);
            let conn = sim.add_connection(src, dst);
            sim.post_message(conn, 16 * 1024 * 1024);
            sim.run(&mut NoopApp, FOREVER);
            let drops: Vec<(&'static str, u64)> = DropReason::ALL
                .iter()
                .map(|&r| (r.name(), sim.network().drops_by_reason(r)))
                .collect();
            (sim.total_stats(), drops)
        });

        let hub = &tel.hub;
        assert_eq!(hub.get(Subsystem::Transport, "packet.sent"), stats.sent_packets);
        assert_eq!(hub.get(Subsystem::Transport, "retransmit"), stats.retransmits);
        assert_eq!(hub.get(Subsystem::Transport, "rto"), stats.rto_events);
        assert_eq!(hub.get(Subsystem::Transport, "ack"), stats.acks);
        assert_eq!(
            hub.get(Subsystem::Transport, "msg.completed"),
            stats.completed_messages
        );
        assert_eq!(hub.get(Subsystem::Transport, "rnr_nak"), stats.rnr_naks);
        // The lossy link must actually have dropped something for the
        // per-reason check to be meaningful.
        let total_drops: u64 = drops.iter().map(|&(_, n)| n).sum();
        assert!(total_drops > 0, "loss injection produced no drops");
        for (name, n) in drops {
            assert_eq!(
                hub.get(Subsystem::Net, &format!("drop.{name}")),
                n,
                "fabric drop counter '{name}' disagrees with the hub"
            );
        }
        // Every posted message completed, so every TransportMsg span
        // closed: the stage histogram holds exactly the completions.
        assert_eq!(tel.spans.open_count(), 0);
        assert_eq!(tel.spans.leaked(), 0);
        assert_eq!(
            tel.spans.stage(stellar_telemetry::Stage::TransportMsg).count() as u64,
            stats.completed_messages
        );
    }
}
