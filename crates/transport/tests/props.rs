//! Property tests for the transport's core invariants.

use stellar_sim::proptest_lite::check;
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::conn::{ConnId, Connection, MessageState};
use stellar_transport::{PathAlgo, PathSelector};

/// The receive bitmap completes exactly once under arbitrary arrival
/// order with arbitrary duplication.
#[test]
fn ooo_placement_exactly_once() {
    check("ooo_placement_exactly_once", 256, |g| {
        let total = g.u64(1, 300);
        let dup_seed = g.u64(0, 1000);
        let mut order: Vec<u64> = (0..total).collect();
        let mut rng = SimRng::from_seed(dup_seed);
        rng.shuffle(&mut order);
        // Duplicate ~30% of packets at random positions.
        let dups: Vec<u64> = order.iter().copied().filter(|_| rng.chance(0.3)).collect();
        let mut arrivals = order.clone();
        arrivals.extend(dups);
        rng.shuffle(&mut arrivals);

        let mut m = MessageState::new(total, total * 4096, SimTime::ZERO);
        let mut completions = 0;
        let mut new_placements = 0;
        for idx in arrivals {
            if m.place_packet(idx) {
                new_placements += 1;
            }
            if m.fully_received() {
                completions += 1;
                break; // transport stops delivering after completion
            }
        }
        assert_eq!(completions, 1);
        assert_eq!(new_placements, total);
    });
}

/// Every packet is assigned to exactly one message slot; segmentation
/// conserves bytes.
#[test]
fn segmentation_conserves_bytes() {
    check("segmentation_conserves_bytes", 256, |g| {
        let bytes = g.u64(1, 10_000_000);
        let mtu_pow = g.u32(9, 14);
        let mtu = 1u64 << mtu_pow;
        let mut c = Connection::new(ConnId(0), stellar_net::NicId(0), stellar_net::NicId(1));
        c.post_message(SimTime::ZERO, bytes, mtu);
        let total: u64 = c.unsent.iter().map(|p| p.bytes).sum();
        assert_eq!(total, bytes);
        assert!(c.unsent.iter().all(|p| p.bytes <= mtu && p.bytes > 0));
        // Indices are 0..n contiguous.
        for (i, p) in c.unsent.iter().enumerate() {
            assert_eq!(p.idx, i as u64);
        }
    });
}

/// Path selectors always return a path within range and respect the
/// allowed predicate, for every algorithm.
#[test]
fn selector_respects_constraints() {
    check("selector_respects_constraints", 256, |g| {
        let algo = *g.pick(&[
            PathAlgo::SinglePath,
            PathAlgo::RoundRobin,
            PathAlgo::Obs,
            PathAlgo::Dwrr,
            PathAlgo::BestRtt,
            PathAlgo::MpRdma,
        ]);
        let paths = g.u32(1, 161);
        let lo = g.u32(0, 8);
        let seed = g.u64(0, 100);
        let mut s = PathSelector::new(algo, paths, SimRng::from_seed(seed));
        let lo = lo.min(paths - 1);
        for _ in 0..50 {
            let p = s.select(None, &|p| p >= lo).expect("a path exists");
            assert!(p < paths && p >= lo, "{algo:?}: {p}");
        }
        // RTT feedback keeps inflight counters non-negative.
        for p in 0..paths.min(4) {
            s.on_ack(p, SimDuration::from_micros(10), false);
            s.on_loss(p);
        }
    });
}

/// OBS spraying over N paths touches a large fraction of them after
/// enough packets (no silent path collapse).
#[test]
fn obs_covers_paths() {
    check("obs_covers_paths", 128, |g| {
        let paths = g.u32(2, 129);
        let seed = g.u64(0, 50);
        let mut s = PathSelector::new(PathAlgo::Obs, paths, SimRng::from_seed(seed));
        for _ in 0..(paths as usize * 20) {
            s.select(None, &|_| true);
        }
        assert!(s.active_paths() as u32 >= paths * 8 / 10);
    });
}
