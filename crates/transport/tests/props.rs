//! Property tests for the transport's core invariants.

use stellar_net::{ClosConfig, ClosTopology, FaultPlan, Network, NetworkConfig};
use stellar_sim::par::with_thread_override;
use stellar_sim::proptest_lite::check;
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::conn::{ConnId, Connection, MessageState};
use stellar_transport::{
    App, MsgId, PathAlgo, PathSelector, RecoveryPolicy, ScoreboardPolicy, TransportConfig,
    TransportSim,
};

/// The receive bitmap completes exactly once under arbitrary arrival
/// order with arbitrary duplication.
#[test]
fn ooo_placement_exactly_once() {
    check("ooo_placement_exactly_once", 256, |g| {
        let total = g.u64(1, 300);
        let dup_seed = g.u64(0, 1000);
        let mut order: Vec<u64> = (0..total).collect();
        let mut rng = SimRng::from_seed(dup_seed);
        rng.shuffle(&mut order);
        // Duplicate ~30% of packets at random positions.
        let dups: Vec<u64> = order.iter().copied().filter(|_| rng.chance(0.3)).collect();
        let mut arrivals = order.clone();
        arrivals.extend(dups);
        rng.shuffle(&mut arrivals);

        let mut m = MessageState::new(total, total * 4096, SimTime::ZERO);
        let mut completions = 0;
        let mut new_placements = 0;
        for idx in arrivals {
            if m.place_packet(idx) {
                new_placements += 1;
            }
            if m.fully_received() {
                completions += 1;
                break; // transport stops delivering after completion
            }
        }
        assert_eq!(completions, 1);
        assert_eq!(new_placements, total);
    });
}

/// Every packet is assigned to exactly one message slot; segmentation
/// conserves bytes.
#[test]
fn segmentation_conserves_bytes() {
    check("segmentation_conserves_bytes", 256, |g| {
        let bytes = g.u64(1, 10_000_000);
        let mtu_pow = g.u32(9, 14);
        let mtu = 1u64 << mtu_pow;
        let mut c = Connection::new(ConnId(0), stellar_net::NicId(0), stellar_net::NicId(1));
        c.post_message(SimTime::ZERO, bytes, mtu);
        let total: u64 = c.unsent.iter().map(|p| p.bytes).sum();
        assert_eq!(total, bytes);
        assert!(c.unsent.iter().all(|p| p.bytes <= mtu && p.bytes > 0));
        // Indices are 0..n contiguous.
        for (i, p) in c.unsent.iter().enumerate() {
            assert_eq!(p.idx, i as u64);
        }
    });
}

/// Path selectors always return a path within range and respect the
/// allowed predicate, for every algorithm.
#[test]
fn selector_respects_constraints() {
    check("selector_respects_constraints", 256, |g| {
        let algo = *g.pick(&[
            PathAlgo::SinglePath,
            PathAlgo::RoundRobin,
            PathAlgo::Obs,
            PathAlgo::Dwrr,
            PathAlgo::BestRtt,
            PathAlgo::MpRdma,
        ]);
        let paths = g.u32(1, 161);
        let lo = g.u32(0, 8);
        let seed = g.u64(0, 100);
        let mut s = PathSelector::new(algo, paths, SimRng::from_seed(seed));
        let lo = lo.min(paths - 1);
        for _ in 0..50 {
            let p = s.select(None, &|p| p >= lo).expect("a path exists");
            assert!(p < paths && p >= lo, "{algo:?}: {p}");
        }
        // RTT feedback keeps inflight counters non-negative.
        for p in 0..paths.min(4) {
            s.on_ack(p, SimDuration::from_micros(10), false);
            s.on_loss(p);
        }
    });
}

/// The loss scoreboard blacklists a path after the configured number of
/// consecutive losses, routes around it while the penalty lasts, and
/// readmits it when the penalty expires or an ACK proves the path healthy
/// again (the flap-up case).
#[test]
fn scoreboard_blacklists_and_readmits() {
    check("scoreboard_blacklists_and_readmits", 128, |g| {
        let paths = g.u32(2, 64);
        let after = g.u32(1, 5);
        let penalty_us = g.u64(10, 1000);
        let seed = g.u64(0, 100);
        let victim = g.u32(0, paths);
        let now = SimTime::from_nanos(g.u64(0, 1_000_000));
        let mut s = PathSelector::new(PathAlgo::Obs, paths, SimRng::from_seed(seed));
        s.set_scoreboard(ScoreboardPolicy {
            blacklist_after: after,
            penalty: SimDuration::from_micros(penalty_us),
        });
        for _ in 0..after {
            s.on_loss_at(now, victim);
        }
        assert!(s.is_blacklisted(victim, now));
        assert_eq!(s.blacklisted_count(now), 1);
        // While blacklisted, the selector routes around the victim.
        for _ in 0..50 {
            let p = s.select_at(now, None, &|_| true).expect("a path exists");
            assert_ne!(p, victim, "blacklisted path selected");
        }
        // Penalty expiry readmits it — a restored (flapped-up) path is
        // usable again with no explicit reset.
        let later = now + SimDuration::from_micros(penalty_us);
        assert!(!s.is_blacklisted(victim, later));
        // And an ACK clears the sentence early.
        for _ in 0..after {
            s.on_loss_at(now, victim);
        }
        s.on_ack(victim, SimDuration::from_micros(10), false);
        assert!(!s.is_blacklisted(victim, now));
        assert_eq!(s.blacklisted_count(now), 0);
    });
}

/// An identical seed and fault plan drive the full transport (RTO
/// backoff, scoreboard, retry budget) to byte-identical statistics.
#[test]
fn transport_under_faults_is_deterministic() {
    struct Quiet;
    impl App for Quiet {
        fn on_message_complete(&mut self, _: &mut TransportSim, _: ConnId, _: MsgId) {}
    }
    check("transport_under_faults_is_deterministic", 16, |g| {
        let seed = g.u64(0, 500);
        let bytes = g.u64(64, 2048) * 1024;
        let flaps = g.u32(1, 5);
        let run = || {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 2,
                rails: 1,
                planes: 2,
                aggs_per_plane: 4,
            });
            let rng = SimRng::from_seed(seed);
            let network = Network::new(
                topo,
                NetworkConfig {
                    bgp_convergence: SimDuration::from_millis(1),
                    ..NetworkConfig::default()
                },
                rng.fork("net"),
            );
            let mut sim = TransportSim::new(network, TransportConfig::default(), rng.fork("transport"));
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(2, 0);
            let conn = sim.add_connection(src, dst);
            let links: Vec<_> = (0..8)
                .map(|p| sim.network().topology().route(src, dst, 0, p)[1])
                .collect();
            let plan = FaultPlan::new(seed).flap_storm(
                &links,
                SimTime::from_nanos(5_000),
                SimDuration::from_micros(200),
                flaps,
                SimDuration::from_micros(10),
                SimDuration::from_micros(60),
            );
            sim.network_mut().install_fault_plan(plan);
            sim.post_message(conn, bytes);
            sim.run_to_idle(&mut Quiet, SimTime::from_nanos(u64::MAX / 2));
            (sim.total_stats(), sim.error_count())
        };
        assert_eq!(run(), run());
    });
}

/// An arbitrary fault plan severe enough to exhaust the retry budget
/// drives the recovery machinery (teardown → backoff → re-establish →
/// replay) to a byte-identical report at 1 worker and 8 workers: same
/// stats (including `recoveries` and `replayed_packets`), no connection
/// left dead or mid-recovery, and the message delivered exactly once.
#[test]
fn recovery_under_faults_is_identical_across_thread_counts() {
    struct Quiet;
    impl App for Quiet {
        fn on_message_complete(&mut self, _: &mut TransportSim, _: ConnId, _: MsgId) {}
    }
    check("recovery_under_faults_is_identical_across_thread_counts", 12, |g| {
        let seed = g.u64(0, 500);
        // ≥ 2 MB keeps the transfer alive well past `down_at` (a 2 MB
        // message takes ~80 µs on a healthy 200 Gbps path), so the
        // outage always lands mid-flight.
        let bytes = g.u64(2048, 8192) * 1024;
        let retry_budget = g.u32(2, 6);
        let down_at = SimTime::from_nanos(g.u64(1_000, 40_000));
        let flaps = g.u32(1, 4);
        let run = |threads: usize| {
            with_thread_override(threads, || {
                let topo = ClosTopology::build(ClosConfig {
                    segments: 2,
                    hosts_per_segment: 2,
                    rails: 1,
                    planes: 2,
                    aggs_per_plane: 4,
                });
                let rng = SimRng::from_seed(seed);
                let network = Network::new(
                    topo,
                    NetworkConfig {
                        bgp_convergence: SimDuration::from_millis(50),
                        ..NetworkConfig::default()
                    },
                    rng.fork("net"),
                );
                let config = TransportConfig {
                    algo: PathAlgo::SinglePath,
                    num_paths: 1,
                    rto_backoff: 1.0,
                    retry_budget,
                    recovery: Some(RecoveryPolicy::default()),
                    ..TransportConfig::default()
                };
                let rto = config.rto;
                let mut sim = TransportSim::new(network, config, rng.fork("transport"));
                let src = sim.network().topology().nic(0, 0);
                let dst = sim.network().topology().nic(2, 0);
                let conn = sim.add_connection(src, dst);
                // The single pinned link goes dark long enough to exhaust
                // the retry budget, guaranteeing at least one recovery;
                // a flap storm on the neighbouring links rides along for
                // fault-plan arbitrariness.
                let victim = sim.network().topology().route(src, dst, 0, 0)[1];
                let others: Vec<_> = (1..4)
                    .map(|p| sim.network().topology().route(src, dst, 0, p)[1])
                    .collect();
                let outage = rto.mul(u64::from(retry_budget) + 3);
                let plan = FaultPlan::new(seed)
                    .link_down(down_at, victim)
                    .link_up(down_at + outage, victim)
                    .flap_storm(
                        &others,
                        down_at,
                        SimDuration::from_micros(200),
                        flaps,
                        SimDuration::from_micros(10),
                        SimDuration::from_micros(60),
                    );
                sim.network_mut().install_fault_plan(plan);
                sim.post_message(conn, bytes);
                sim.run_to_idle(&mut Quiet, SimTime::from_nanos(u64::MAX / 2));
                let stats = sim.total_stats();
                assert!(stats.recoveries >= 1, "outage must trigger recovery");
                assert_eq!(stats.completed_messages, 1);
                assert_eq!(sim.failed_connections(), 0);
                assert_eq!(sim.recovering_count(), 0);
                stats
            })
        };
        assert_eq!(run(1), run(8));
    });
}

/// With no faults installed, enabling recovery (and plane failover) is
/// invisible: the run is byte-identical to the same run with both
/// disabled — no extra RNG draws, no timing perturbation.
#[test]
fn fault_free_run_ignores_recovery_policy() {
    struct Quiet;
    impl App for Quiet {
        fn on_message_complete(&mut self, _: &mut TransportSim, _: ConnId, _: MsgId) {}
    }
    check("fault_free_run_ignores_recovery_policy", 24, |g| {
        let seed = g.u64(0, 500);
        let bytes = g.u64(64, 2048) * 1024;
        let algo = *g.pick(&[PathAlgo::SinglePath, PathAlgo::Obs, PathAlgo::MpRdma]);
        let hardened = g.bool();
        let run = || {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 2,
                rails: 1,
                planes: 2,
                aggs_per_plane: 4,
            });
            let rng = SimRng::from_seed(seed);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            let config = TransportConfig {
                algo,
                num_paths: if algo == PathAlgo::SinglePath { 1 } else { 16 },
                recovery: hardened.then(RecoveryPolicy::default),
                plane_failover: hardened.then(stellar_transport::PlaneFailover::default),
                ..TransportConfig::default()
            };
            let mut sim = TransportSim::new(network, config, rng.fork("transport"));
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(2, 0);
            let conn = sim.add_connection(src, dst);
            sim.post_message(conn, bytes);
            sim.run_to_idle(&mut Quiet, SimTime::from_nanos(u64::MAX / 2));
            (sim.total_stats(), sim.now())
        };
        // Both arms of `hardened` must agree with a fresh unhardened run.
        let (base_stats, base_now) = run();
        let baseline = {
            let topo = ClosTopology::build(ClosConfig {
                segments: 2,
                hosts_per_segment: 2,
                rails: 1,
                planes: 2,
                aggs_per_plane: 4,
            });
            let rng = SimRng::from_seed(seed);
            let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
            let mut sim = TransportSim::new(
                network,
                TransportConfig {
                    algo,
                    num_paths: if algo == PathAlgo::SinglePath { 1 } else { 16 },
                    ..TransportConfig::default()
                },
                rng.fork("transport"),
            );
            let src = sim.network().topology().nic(0, 0);
            let dst = sim.network().topology().nic(2, 0);
            let conn = sim.add_connection(src, dst);
            sim.post_message(conn, bytes);
            sim.run_to_idle(&mut Quiet, SimTime::from_nanos(u64::MAX / 2));
            (sim.total_stats(), sim.now())
        };
        assert_eq!((base_stats, base_now), baseline);
        assert_eq!(base_stats.recoveries, 0);
    });
}

/// OBS spraying over N paths touches a large fraction of them after
/// enough packets (no silent path collapse).
#[test]
fn obs_covers_paths() {
    check("obs_covers_paths", 128, |g| {
        let paths = g.u32(2, 129);
        let seed = g.u64(0, 50);
        let mut s = PathSelector::new(PathAlgo::Obs, paths, SimRng::from_seed(seed));
        for _ in 0..(paths as usize * 20) {
            s.select(None, &|_| true);
        }
        assert!(s.active_paths() as u32 >= paths * 8 / 10);
    });
}
