//! Property tests for the transport's core invariants.

use proptest::prelude::*;
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::conn::{Connection, ConnId, MessageState};
use stellar_transport::{PathAlgo, PathSelector};

proptest! {
    /// The receive bitmap completes exactly once under arbitrary arrival
    /// order with arbitrary duplication.
    #[test]
    fn ooo_placement_exactly_once(
        total in 1u64..300,
        dup_seed in 0u64..1000,
    ) {
        let mut order: Vec<u64> = (0..total).collect();
        let mut rng = SimRng::from_seed(dup_seed);
        rng.shuffle(&mut order);
        // Duplicate ~30% of packets at random positions.
        let dups: Vec<u64> = order
            .iter()
            .copied()
            .filter(|_| rng.chance(0.3))
            .collect();
        let mut arrivals = order.clone();
        arrivals.extend(dups);
        rng.shuffle(&mut arrivals);

        let mut m = MessageState::new(total, total * 4096, SimTime::ZERO);
        let mut completions = 0;
        let mut new_placements = 0;
        for idx in arrivals {
            if m.place_packet(idx) {
                new_placements += 1;
            }
            if m.fully_received() {
                completions += 1;
                break; // transport stops delivering after completion
            }
        }
        prop_assert_eq!(completions, 1);
        prop_assert_eq!(new_placements, total);
    }

    /// Every packet is assigned to exactly one message slot; segmentation
    /// conserves bytes.
    #[test]
    fn segmentation_conserves_bytes(
        bytes in 1u64..10_000_000,
        mtu_pow in 9u32..14,
    ) {
        let mtu = 1u64 << mtu_pow;
        let mut c = Connection::new(ConnId(0), stellar_net::NicId(0), stellar_net::NicId(1));
        c.post_message(SimTime::ZERO, bytes, mtu);
        let total: u64 = c.unsent.iter().map(|p| p.bytes).sum();
        prop_assert_eq!(total, bytes);
        prop_assert!(c.unsent.iter().all(|p| p.bytes <= mtu && p.bytes > 0));
        // Indices are 0..n contiguous.
        for (i, p) in c.unsent.iter().enumerate() {
            prop_assert_eq!(p.idx, i as u64);
        }
    }

    /// Path selectors always return a path within range and respect the
    /// allowed predicate, for every algorithm.
    #[test]
    fn selector_respects_constraints(
        algo_idx in 0usize..6,
        paths in 1u32..=160,
        lo in 0u32..8,
        seed in 0u64..100,
    ) {
        let algos = [
            PathAlgo::SinglePath,
            PathAlgo::RoundRobin,
            PathAlgo::Obs,
            PathAlgo::Dwrr,
            PathAlgo::BestRtt,
            PathAlgo::MpRdma,
        ];
        let algo = algos[algo_idx];
        let mut s = PathSelector::new(algo, paths, SimRng::from_seed(seed));
        let lo = lo.min(paths - 1);
        for _ in 0..50 {
            let p = s.select(None, &|p| p >= lo).expect("a path exists");
            prop_assert!(p < paths && p >= lo, "{algo:?}: {p}");
        }
        // RTT feedback keeps inflight counters non-negative.
        for p in 0..paths.min(4) {
            s.on_ack(p, SimDuration::from_micros(10), false);
            s.on_loss(p);
        }
    }

    /// OBS spraying over N paths touches a large fraction of them after
    /// enough packets (no silent path collapse).
    #[test]
    fn obs_covers_paths(paths in 2u32..=128, seed in 0u64..50) {
        let mut s = PathSelector::new(PathAlgo::Obs, paths, SimRng::from_seed(seed));
        for _ in 0..(paths as usize * 20) {
            s.select(None, &|_| true);
        }
        prop_assert!(s.active_paths() as u32 >= paths * 8 / 10);
    }
}
