//! The RunD microVM hypervisor: guest memory layout and EPT management.
//!
//! Guest RAM is tracked as contiguous GPA→HPA *extents* (not materialized
//! 4 KiB page-table entries — a 1.6 TB guest would need 400 M entries),
//! while device-register mappings (the vDB) use a real 4 KiB-granular EPT,
//! because their page-level behaviour is exactly what the Fig. 5 bug is
//! about.

use stellar_pcie::addr::{Gpa, Hpa, PAGE_4K};
use stellar_pcie::paging::Ept;
use stellar_sim::SimDuration;

/// Hypervisor timing model.
#[derive(Debug, Clone)]
pub struct HypervisorConfig {
    /// MicroVM creation time excluding memory work (kernel boot, device
    /// model setup).
    pub microvm_base_boot: SimDuration,
    /// General hypervisor overhead per GiB of configured guest memory
    /// (memory-map setup, balloon init — what makes the PVDMA curve in
    /// Fig. 6 rise mildly from 160 GB to 1.6 TB).
    pub per_gib_overhead: SimDuration,
}

impl Default for HypervisorConfig {
    fn default() -> Self {
        HypervisorConfig {
            microvm_base_boot: SimDuration::from_millis(6_500),
            per_gib_overhead: SimDuration::from_micros(7_700),
        }
    }
}

/// What kind of mapping backs a translated GPA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateKind {
    /// Ordinary guest RAM.
    Ram,
    /// A device register directly mapped into the guest (e.g. the vDB).
    DeviceRegister,
}

#[derive(Debug, Clone, Copy)]
struct Extent {
    gpa: u64,
    hpa: u64,
    len: u64,
}

/// Guest RAM layout: sorted, non-overlapping GPA→HPA extents.
#[derive(Debug, Default, Clone)]
pub struct GuestRam {
    extents: Vec<Extent>,
}

impl GuestRam {
    /// An empty layout.
    pub fn new() -> Self {
        GuestRam::default()
    }

    /// Add an extent. Returns `false` (and changes nothing) on overlap
    /// with an existing extent.
    pub fn add(&mut self, gpa: Gpa, hpa: Hpa, len: u64) -> bool {
        let new = Extent {
            gpa: gpa.0,
            hpa: hpa.0,
            len,
        };
        if self
            .extents
            .iter()
            .any(|e| e.gpa < new.gpa + new.len && new.gpa < e.gpa + e.len)
        {
            return false;
        }
        let pos = self.extents.partition_point(|e| e.gpa < new.gpa);
        self.extents.insert(pos, new);
        true
    }

    /// Translate a GPA inside RAM.
    pub fn translate(&self, gpa: Gpa) -> Option<Hpa> {
        let idx = self.extents.partition_point(|e| e.gpa <= gpa.0);
        let e = self.extents.get(idx.checked_sub(1)?)?;
        if gpa.0 < e.gpa + e.len {
            Some(Hpa(e.hpa + (gpa.0 - e.gpa)))
        } else {
            None
        }
    }

    /// Total RAM bytes.
    pub fn total_bytes(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Iterate `(gpa, hpa, len)` extents in GPA order.
    pub fn extents(&self) -> impl Iterator<Item = (Gpa, Hpa, u64)> + '_ {
        self.extents.iter().map(|e| (Gpa(e.gpa), Hpa(e.hpa), e.len))
    }
}

/// The per-container hypervisor instance.
#[derive(Debug)]
pub struct Hypervisor {
    config: HypervisorConfig,
    ram: GuestRam,
    dev_ept: Ept,
}

impl Hypervisor {
    /// A hypervisor with no guest memory configured.
    pub fn new(config: HypervisorConfig) -> Self {
        Hypervisor {
            config,
            ram: GuestRam::new(),
            dev_ept: Ept::new(PAGE_4K),
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> &HypervisorConfig {
        &self.config
    }

    /// Configure `len` bytes of guest RAM at `gpa`, backed by host memory
    /// at `hpa`.
    ///
    /// # Panics
    /// Panics on overlap with existing RAM — layout construction is
    /// program-controlled, so an overlap is a harness bug.
    pub fn add_ram(&mut self, gpa: Gpa, hpa: Hpa, len: u64) {
        assert!(self.ram.add(gpa, hpa, len), "guest RAM extents overlap");
    }

    /// Map a 4 KiB device register (e.g. the RNIC doorbell) into the guest
    /// at `gpa` — the Fig. 5 "Step 1" EPT entry.
    pub fn map_device_register(&mut self, gpa: Gpa, hpa: Hpa) {
        self.dev_ept
            .map_page_replace(gpa, hpa)
            .expect("device register must be 4 KiB aligned");
    }

    /// Release a device-register mapping (Fig. 5 "Step 4": the RDMA program
    /// exits and the vDB EPT entry goes away).
    pub fn unmap_device_register(&mut self, gpa: Gpa) {
        // Ignore double-unmap: release paths may race benignly.
        let _ = self.dev_ept.unmap(gpa, PAGE_4K);
    }

    /// Translate a GPA, reporting whether RAM or a device register backs
    /// it. Device registers take precedence (they shadow RAM holes).
    pub fn translate(&self, gpa: Gpa) -> Option<(Hpa, TranslateKind)> {
        if let Ok(hpa) = self.dev_ept.translate(gpa) {
            return Some((hpa, TranslateKind::DeviceRegister));
        }
        self.ram.translate(gpa).map(|h| (h, TranslateKind::Ram))
    }

    /// The guest RAM layout.
    pub fn ram(&self) -> &GuestRam {
        &self.ram
    }

    /// Hypervisor boot-time contribution for this guest (excludes memory
    /// pinning, which depends on the memory strategy).
    pub fn base_boot_time(&self) -> SimDuration {
        let gib = self.ram.total_bytes() / (1024 * 1024 * 1024);
        self.config.microvm_base_boot + self.config.per_gib_overhead.mul(gib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_extent_translation() {
        let mut r = GuestRam::new();
        assert!(r.add(Gpa(0x0), Hpa(0x8000_0000), 0x10_0000));
        assert!(r.add(Gpa(0x40_0000), Hpa(0xc000_0000), 0x10_0000));
        assert_eq!(r.translate(Gpa(0x1234)), Some(Hpa(0x8000_1234)));
        assert_eq!(r.translate(Gpa(0x40_0010)), Some(Hpa(0xc000_0010)));
        assert_eq!(r.translate(Gpa(0x20_0000)), None); // hole
        assert_eq!(r.translate(Gpa(0x10_0000)), None); // one past extent 0
        assert_eq!(r.total_bytes(), 0x20_0000);
    }

    #[test]
    fn overlapping_extents_rejected() {
        let mut r = GuestRam::new();
        assert!(r.add(Gpa(0x0), Hpa(0), 0x2000));
        assert!(!r.add(Gpa(0x1000), Hpa(0x10_0000), 0x2000));
        assert_eq!(r.extents().count(), 1);
    }

    #[test]
    fn unsorted_insertion_still_translates() {
        let mut r = GuestRam::new();
        assert!(r.add(Gpa(0x40_0000), Hpa(0xc000_0000), 0x1000));
        assert!(r.add(Gpa(0x0), Hpa(0x8000_0000), 0x1000));
        assert_eq!(r.translate(Gpa(0x500)), Some(Hpa(0x8000_0500)));
        assert_eq!(r.translate(Gpa(0x40_0500)), Some(Hpa(0xc000_0500)));
    }

    #[test]
    fn device_register_shadows_and_releases() {
        let mut h = Hypervisor::new(HypervisorConfig::default());
        h.add_ram(Gpa(0), Hpa(0x8000_0000), 0x20_0000);
        h.map_device_register(Gpa(0x10_0000), Hpa(0x2000_0000)); // vDB
        assert_eq!(
            h.translate(Gpa(0x10_0004)),
            Some((Hpa(0x2000_0004), TranslateKind::DeviceRegister))
        );
        h.unmap_device_register(Gpa(0x10_0000));
        // Falls back to RAM once the register mapping is gone.
        assert_eq!(
            h.translate(Gpa(0x10_0004)),
            Some((Hpa(0x8010_0004), TranslateKind::Ram))
        );
        // Double-unmap is benign.
        h.unmap_device_register(Gpa(0x10_0000));
    }

    #[test]
    fn base_boot_time_scales_with_ram() {
        let mut small = Hypervisor::new(HypervisorConfig::default());
        small.add_ram(Gpa(0), Hpa(0), 16 * 1024 * 1024 * 1024);
        let mut large = Hypervisor::new(HypervisorConfig::default());
        large.add_ram(Gpa(0), Hpa(0), 1_600 * 1024 * 1024 * 1024);
        let (s, l) = (small.base_boot_time(), large.base_boot_time());
        assert!(l > s);
        // Fig. 6: even the 1.6 TB guest stays under 20 s with PVDMA.
        assert!(l < SimDuration::from_secs(20), "large boot = {l}");
    }
}
