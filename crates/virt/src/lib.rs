//! # stellar-virt — host virtualization substrate
//!
//! The host-side machinery of the paper's Sections 2–5:
//!
//! * [`hypervisor`] — the RunD microVM hypervisor: guest RAM layout
//!   (GPA→HPA extents), device-register EPT mappings (the 4 KiB vDB
//!   entries), and translation for both.
//! * [`vfio`] — the legacy VFIO path: BAR mapping into the guest and the
//!   *pin-everything-up-front* behaviour responsible for minute-long
//!   container start-up (Problem ②, Fig. 6 "w/o PVDMA").
//! * [`pvdma`] — Stellar's Para-Virtualized DMA: on-demand 2 MiB-granular
//!   pinning with a map cache, including a faithful model of the Fig. 5
//!   doorbell-aliasing bug and its virtio-shm fix.
//! * [`virtio`] — the virtio device framework: control-path queues and the
//!   shared-memory (shm) region that gives the vDB an address space
//!   disjoint from guest RAM.
//! * [`rund`] — the RunD secure-container lifecycle: boot-time model
//!   combining microVM creation, device attach, and the chosen memory
//!   strategy (full pin vs. PVDMA).

#![warn(missing_docs)]

pub mod hypervisor;
pub mod pvdma;
pub mod rund;
pub mod vfio;
pub mod virtio;

pub use hypervisor::{GuestRam, Hypervisor, HypervisorConfig, TranslateKind};
pub use pvdma::{Pvdma, PvdmaConfig, PvdmaError};
pub use rund::{BootReport, MemoryStrategy, RundConfig, RundContainer};
pub use vfio::{Vfio, VfioError};
pub use virtio::{ShmRegion, VirtioDevice, VirtioError, VirtioQueue};
