//! PVDMA — Para-Virtualized Direct Memory Access (Section 5).
//!
//! Instead of pinning all guest memory at boot, PVDMA intercepts each DMA
//! preparation, pins the covering 2 MiB block(s) on first touch, and caches
//! the fact in its **map cache**. Subsequent DMAs to the same block hit the
//! cache and proceed immediately (Fig. 4, stages 1–3).
//!
//! ## The Fig. 5 aliasing bug
//!
//! Pinning copies the *current* guest translation (including any device-
//! register EPT entry inside the block, like the vDB) into the IOMMU at
//! 4 KiB granularity — but the map cache remembers only the 2 MiB block.
//! When the vDB's EPT mapping is later released and the guest reuses that
//! GPA for ordinary RAM (a new GPU command queue), PVDMA sees the block as
//! "already registered" and never refreshes the IOMMU, leaving a stale
//! vDB→RNIC-doorbell translation live. [`Pvdma::check_consistency`]
//! surfaces exactly that staleness; the regression tests and the
//! `doorbell_aliasing` example walk through the full five-step scenario.
//!
//! The production fix moves the vDB into the virtio shared-memory region
//! (an I/O space disjoint from guest RAM — see
//! [`crate::virtio::ShmRegion`]), making the overlap impossible.

use stellar_pcie::addr::{Address, Gpa, Hpa, Iova, PAGE_2M, PAGE_4K};
use stellar_pcie::iommu::{Iommu, IommuError};
use stellar_sim::SimDuration;
use stellar_telemetry::{count, Subsystem};

use crate::hypervisor::Hypervisor;

use std::collections::HashMap;

/// PVDMA configuration.
#[derive(Debug, Clone)]
pub struct PvdmaConfig {
    /// Pinning granularity. 2 MiB in production: "to balance Map Cache
    /// size and IOMMU pinning overhead" (§5). The `pvdma_granularity`
    /// ablation bench sweeps this.
    pub block_size: u64,
    /// Map-cache lookup latency on the DMA fast path ("lightweight,
    /// negligible latency").
    pub cache_lookup_latency: SimDuration,
}

impl Default for PvdmaConfig {
    fn default() -> Self {
        PvdmaConfig {
            block_size: PAGE_2M,
            cache_lookup_latency: SimDuration::from_nanos(50),
        }
    }
}

/// PVDMA errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvdmaError {
    /// The guest address is not backed by RAM or a device register.
    UnbackedGpa(Gpa),
    /// IOMMU rejected the pin.
    Iommu(IommuError),
}

impl From<IommuError> for PvdmaError {
    fn from(e: IommuError) -> Self {
        PvdmaError::Iommu(e)
    }
}

impl std::fmt::Display for PvdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PvdmaError::UnbackedGpa(g) => write!(f, "DMA to unbacked guest address {g}"),
            PvdmaError::Iommu(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PvdmaError {}

/// Outcome of a DMA preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareOutcome {
    /// Simulated latency of the preparation (cache lookup, plus pinning on
    /// a miss).
    pub latency: SimDuration,
    /// Blocks newly pinned by this call.
    pub blocks_pinned: u64,
    /// Blocks served from the map cache.
    pub blocks_hit: u64,
}

/// A stale IOMMU translation detected by the consistency checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inconsistency {
    /// Guest page whose translations disagree.
    pub gpa: Gpa,
    /// What the IOMMU will send DMA to.
    pub iommu_hpa: Hpa,
    /// What the guest mapping currently says.
    pub current_hpa: Option<Hpa>,
}

/// The PVDMA engine of one container.
#[derive(Debug)]
pub struct Pvdma {
    config: PvdmaConfig,
    /// Map cache: pinned block base → number of 4 KiB pages copied into
    /// the IOMMU when the block was pinned.
    map_cache: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl Pvdma {
    /// A PVDMA engine with an empty map cache.
    pub fn new(config: PvdmaConfig) -> Self {
        assert!(
            config.block_size.is_power_of_two() && config.block_size >= PAGE_4K,
            "PVDMA block size must be a power of two >= 4 KiB"
        );
        Pvdma {
            config,
            map_cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PvdmaConfig {
        &self.config
    }

    /// Intercept a DMA targeting `[gpa, gpa+len)` (Fig. 4 stage 1): pin any
    /// uncached covering blocks (stage 2), serve the rest from the map
    /// cache (stage 3).
    ///
    /// Pinning copies the guest's *current* 4 KiB translations into the
    /// IOMMU; blocks already in the map cache are **not** refreshed — the
    /// behaviour at the heart of the Fig. 5 bug.
    pub fn dma_prepare(
        &mut self,
        hypervisor: &Hypervisor,
        iommu: &mut Iommu,
        gpa: Gpa,
        len: u64,
    ) -> Result<PrepareOutcome, PvdmaError> {
        assert!(len > 0, "zero-length DMA preparation");
        assert_eq!(
            iommu.config().page_size,
            PAGE_4K,
            "PVDMA copies 4 KiB guest translations; IOMMU must be 4 KiB-granular"
        );
        let bs = self.config.block_size;
        let first = gpa.page_base(bs).raw();
        let last = Gpa(gpa.raw() + len - 1).page_base(bs).raw();

        let mut outcome = PrepareOutcome {
            latency: self.config.cache_lookup_latency,
            blocks_pinned: 0,
            blocks_hit: 0,
        };

        count(Subsystem::Virt, "pvdma.prepare", 1);
        let mut block = first;
        loop {
            if self.map_cache.contains_key(&block) {
                self.hits += 1;
                outcome.blocks_hit += 1;
                count(Subsystem::Virt, "pvdma.blocks_hit", 1);
            } else {
                self.misses += 1;
                // Collect the block's current guest translations at 4 KiB
                // granularity — including device registers resident in the
                // block (this is what captures the vDB in Fig. 5c).
                let mut pages = Vec::new();
                for i in 0..bs / PAGE_4K {
                    let page_gpa = Gpa(block + i * PAGE_4K);
                    if let Some((hpa, _kind)) = hypervisor.translate(page_gpa) {
                        pages.push((Iova::from_gpa(page_gpa), hpa));
                    }
                }
                if pages.is_empty() {
                    return Err(PvdmaError::UnbackedGpa(Gpa(block)));
                }
                let pin_cost = iommu.pin_pages(&pages)?;
                outcome.latency += pin_cost;
                outcome.blocks_pinned += 1;
                count(Subsystem::Virt, "pvdma.blocks_pinned", 1);
                self.map_cache.insert(block, pages.len() as u64);
            }
            if block == last {
                break;
            }
            block += bs;
        }
        // A completed preparation is a quiesce point: the map cache and
        // the IOMMU pin ledger must agree.
        if stellar_check::enabled() {
            self.check_invariants(iommu, stellar_sim::SimTime::ZERO + outcome.latency);
        }
        Ok(outcome)
    }

    /// Whether the block containing `gpa` is pinned.
    pub fn is_pinned(&self, gpa: Gpa) -> bool {
        self.map_cache
            .contains_key(&gpa.page_base(self.config.block_size).raw())
    }

    /// Compare the IOMMU's live translations for `[gpa, gpa+len)` against
    /// the guest's current mappings, returning every divergence.
    ///
    /// A non-empty result means a DMA issued now would land somewhere the
    /// guest no longer intends — the Fig. 5e failure.
    pub fn check_consistency(
        &self,
        hypervisor: &Hypervisor,
        iommu: &mut Iommu,
        gpa: Gpa,
        len: u64,
    ) -> Vec<Inconsistency> {
        let mut out = Vec::new();
        let first = gpa.page_base(PAGE_4K).raw();
        let last = Gpa(gpa.raw() + len - 1).page_base(PAGE_4K).raw();
        let mut page = first;
        loop {
            let page_gpa = Gpa(page);
            if let Ok(t) = iommu.translate(Iova::from_gpa(page_gpa)) {
                let current = hypervisor.translate(page_gpa).map(|(h, _)| h);
                if current != Some(t.hpa) {
                    out.push(Inconsistency {
                        gpa: page_gpa,
                        iommu_hpa: t.hpa,
                        current_hpa: current,
                    });
                }
            }
            if page == last {
                break;
            }
            page += PAGE_4K;
        }
        out
    }

    /// Explicitly register a doorbell page living in the virtio shm I/O
    /// space so a *GPU* can ring it via DMA (GPUDirect Async, §5).
    ///
    /// The shm window is not guest RAM, so ordinary PVDMA interception
    /// never maps it; this is the paper's "mechanism similar to PVDMA
    /// that explicitly registers the doorbell's I/O memory in the GPU's
    /// IOMMU page table when needed". The chosen IOVA lives outside the
    /// guest-physical range, so it can never collide with a PVDMA block.
    pub fn register_shm_doorbell(
        &mut self,
        iommu: &mut Iommu,
        shm_iova: Iova,
        doorbell_hpa: Hpa,
    ) -> Result<SimDuration, PvdmaError> {
        let cost = iommu.pin_pages(&[(shm_iova, doorbell_hpa)])?;
        Ok(cost)
    }

    /// Release every pinned block: unmap its pages from the IOMMU and
    /// empty the map cache. Called on container teardown — without it a
    /// destroyed guest would leak pinned host memory.
    pub fn release_all(&mut self, iommu: &mut Iommu) {
        for (&block, _) in self.map_cache.iter() {
            for i in 0..self.config.block_size / PAGE_4K {
                let iova = Iova(block + i * PAGE_4K);
                if iommu.is_mapped(iova) {
                    iommu
                        .unpin(iova, PAGE_4K)
                        .expect("pinned page unmaps cleanly");
                }
            }
        }
        self.map_cache.clear();
    }

    /// Map-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of pinned blocks (map-cache size).
    pub fn pinned_blocks(&self) -> usize {
        self.map_cache.len()
    }

    /// Run the PVDMA accounting invariant at a quiesce point (no-op
    /// unless a `stellar_check` scope is active): every resident
    /// map-cache entry came from a pin (a miss), records no more pages
    /// than its block holds, and the pages it claims are actually pinned
    /// in `iommu`.
    pub fn check_invariants(&self, iommu: &Iommu, at: stellar_sim::SimTime) {
        stellar_check::at_quiesce(at, stellar_check::Layer::Virt, |c| {
            let pages_per_block = self.config.block_size / PAGE_4K;
            let cached_pages: u64 = self.map_cache.values().sum();
            let oversized = self
                .map_cache
                .values()
                .filter(|&&pages| pages == 0 || pages > pages_per_block)
                .count();
            c.check(
                "virt.pvdma_accounting",
                self.map_cache.len() as u64 <= self.misses
                    && oversized == 0
                    && cached_pages * PAGE_4K <= iommu.pinned_bytes(),
                || {
                    format!(
                        "map cache holds {} blocks / {} pages ({} mis-sized) \
                         against {} pinned misses and {} pinned IOMMU bytes",
                        self.map_cache.len(),
                        cached_pages,
                        oversized,
                        self.misses,
                        iommu.pinned_bytes()
                    )
                },
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervisor::HypervisorConfig;
    use stellar_pcie::iommu::IommuConfig;

    const RAM_HPA: u64 = 0x1_0000_0000;
    const RNIC_DB_HPA: u64 = 0x2000_0000;

    fn setup(ram_bytes: u64) -> (Hypervisor, Iommu, Pvdma) {
        let mut h = Hypervisor::new(HypervisorConfig::default());
        h.add_ram(Gpa(0), Hpa(RAM_HPA), ram_bytes);
        let iommu = Iommu::new(IommuConfig::default());
        let p = Pvdma::new(PvdmaConfig::default());
        (h, iommu, p)
    }

    #[test]
    fn first_touch_pins_then_hits() {
        let (h, mut iommu, mut p) = setup(16 * PAGE_2M);
        let o1 = p.dma_prepare(&h, &mut iommu, Gpa(0x1000), 0x2000).unwrap();
        assert_eq!(o1.blocks_pinned, 1);
        assert_eq!(o1.blocks_hit, 0);
        assert!(o1.latency > SimDuration::from_micros(100)); // real pin work
        let o2 = p.dma_prepare(&h, &mut iommu, Gpa(0x3000), 0x1000).unwrap();
        assert_eq!(o2.blocks_pinned, 0);
        assert_eq!(o2.blocks_hit, 1);
        assert_eq!(o2.latency, p.config().cache_lookup_latency);
        assert_eq!(p.cache_stats(), (1, 1));
    }

    #[test]
    fn dma_spanning_blocks_pins_each() {
        let (h, mut iommu, mut p) = setup(16 * PAGE_2M);
        let o = p
            .dma_prepare(&h, &mut iommu, Gpa(PAGE_2M - 0x1000), 0x2000)
            .unwrap();
        assert_eq!(o.blocks_pinned, 2);
        assert!(p.is_pinned(Gpa(0)));
        assert!(p.is_pinned(Gpa(PAGE_2M)));
    }

    #[test]
    fn pinned_memory_translates_in_iommu() {
        let (h, mut iommu, mut p) = setup(4 * PAGE_2M);
        p.dma_prepare(&h, &mut iommu, Gpa(0x4000), 0x1000).unwrap();
        let t = iommu.translate(Iova(0x4010)).unwrap();
        assert_eq!(t.hpa, Hpa(RAM_HPA + 0x4010));
    }

    #[test]
    fn unbacked_gpa_is_rejected() {
        let (h, mut iommu, mut p) = setup(PAGE_2M);
        let err = p.dma_prepare(&h, &mut iommu, Gpa(0x4000_0000), 0x1000);
        assert_eq!(err, Err(PvdmaError::UnbackedGpa(Gpa(0x4000_0000))));
    }

    #[test]
    fn on_demand_pins_far_less_than_full_pin() {
        // A 1 GiB guest that only DMAs into 8 MiB pins 8 MiB, not 1 GiB.
        let gib = 1024 * 1024 * 1024;
        let (h, mut iommu, mut p) = setup(gib);
        p.dma_prepare(&h, &mut iommu, Gpa(0), 8 * PAGE_2M).unwrap();
        assert_eq!(iommu.pinned_bytes(), 8 * PAGE_2M);
        assert!(iommu.pinned_bytes() < gib / 50);
    }

    /// The full Fig. 5 scenario, step by step.
    #[test]
    fn fig5_stale_doorbell_mapping_reproduced() {
        let (mut h, mut iommu, mut p) = setup(16 * PAGE_2M);
        let vdb_gpa = Gpa(PAGE_2M + 4 * PAGE_4K);

        // Step 1: RDMA program maps the vDB into the guest (EPT entry to
        // the RNIC's physical doorbell).
        h.map_device_register(vdb_gpa, Hpa(RNIC_DB_HPA));

        // Step 2: the GPU driver allocates a command queue in the same
        // 2 MiB block (adjacent GPA).
        let cmdq_gpa = Gpa(PAGE_2M + 5 * PAGE_4K);

        // Step 3: GPU DMA-reads the command queue; PVDMA pins the whole
        // 2 MiB block — vDB mapping included.
        p.dma_prepare(&h, &mut iommu, cmdq_gpa, PAGE_4K).unwrap();
        // The vDB's translation got copied into the IOMMU:
        assert_eq!(
            iommu.translate(Iova::from_gpa(vdb_gpa)).unwrap().hpa,
            Hpa(RNIC_DB_HPA)
        );

        // Step 4: the RDMA program exits; the EPT releases the vDB, but
        // PVDMA does not unmap the still-in-use block.
        h.unmap_device_register(vdb_gpa);
        assert!(p.is_pinned(cmdq_gpa));

        // Step 5: the guest reuses the old vDB GPA for a new command queue
        // (ordinary RAM). PVDMA sees the block cached and does nothing.
        let o = p.dma_prepare(&h, &mut iommu, vdb_gpa, PAGE_4K).unwrap();
        assert_eq!(o.blocks_pinned, 0);

        // The IOMMU still routes that GPA to the RNIC doorbell: any GPU
        // DMA to Cmd Q' would hit the NIC. The checker flags it.
        let bad = p.check_consistency(&h, &mut iommu, vdb_gpa, PAGE_4K);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].iommu_hpa, Hpa(RNIC_DB_HPA));
        assert_eq!(bad[0].current_hpa, Some(Hpa(RAM_HPA + vdb_gpa.raw())));
    }

    /// The fix: with the vDB in the virtio shm I/O space (no GPA-space
    /// device mapping), the same sequence stays consistent.
    #[test]
    fn fig5_fixed_by_shm_placement() {
        let (h, mut iommu, mut p) = setup(16 * PAGE_2M);
        // No map_device_register call: the vDB lives in the shm window,
        // which is not part of the guest RAM GPA space at all.
        let cmdq_gpa = Gpa(PAGE_2M + 5 * PAGE_4K);
        p.dma_prepare(&h, &mut iommu, cmdq_gpa, PAGE_4K).unwrap();
        let bad = p.check_consistency(&h, &mut iommu, Gpa(PAGE_2M), PAGE_2M);
        assert!(bad.is_empty());
    }

    #[test]
    fn granularity_4k_avoids_the_bug_but_pins_slower() {
        // The §5 trade-off: a 4 KiB PVDMA block would never swallow the
        // vDB with a neighbouring queue, but pinning a given footprint
        // costs more calls.
        let (mut h, mut iommu4k, _) = setup(16 * PAGE_2M);
        let mut p4k = Pvdma::new(PvdmaConfig {
            block_size: PAGE_4K,
            ..PvdmaConfig::default()
        });
        let vdb_gpa = Gpa(PAGE_2M + 4 * PAGE_4K);
        h.map_device_register(vdb_gpa, Hpa(RNIC_DB_HPA));
        let cmdq_gpa = Gpa(PAGE_2M + 5 * PAGE_4K);
        p4k.dma_prepare(&h, &mut iommu4k, cmdq_gpa, PAGE_4K).unwrap();
        // The vDB page was never pinned at 4 KiB granularity.
        assert!(iommu4k.translate(Iova::from_gpa(vdb_gpa)).is_err());
        h.unmap_device_register(vdb_gpa);
        let bad = p4k.check_consistency(&h, &mut iommu4k, vdb_gpa, PAGE_4K);
        assert!(bad.is_empty());
    }

    #[test]
    fn release_all_returns_every_pinned_byte() {
        let (h, mut iommu, mut p) = setup(16 * PAGE_2M);
        p.dma_prepare(&h, &mut iommu, Gpa(0), 3 * PAGE_2M).unwrap();
        p.dma_prepare(&h, &mut iommu, Gpa(8 * PAGE_2M), PAGE_4K).unwrap();
        assert_eq!(iommu.pinned_bytes(), 4 * PAGE_2M);
        p.release_all(&mut iommu);
        assert_eq!(iommu.pinned_bytes(), 0);
        assert_eq!(p.pinned_blocks(), 0);
        assert!(iommu.translate(Iova(0)).is_err());
        // The engine is reusable afterwards.
        let o = p.dma_prepare(&h, &mut iommu, Gpa(0), PAGE_4K).unwrap();
        assert_eq!(o.blocks_pinned, 1);
    }

    #[test]
    fn gpudirect_async_shm_doorbell_registration() {
        // The GPU rings the vDB via DMA: the shm doorbell gets an explicit
        // IOMMU entry at an IOVA disjoint from guest RAM.
        let (h, mut iommu, mut p) = setup(4 * PAGE_2M);
        let shm_iova = Iova(1 << 45); // outside any guest-physical range
        let cost = p
            .register_shm_doorbell(&mut iommu, shm_iova, Hpa(RNIC_DB_HPA))
            .unwrap();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(iommu.translate(shm_iova).unwrap().hpa, Hpa(RNIC_DB_HPA));
        // Normal PVDMA traffic in guest RAM cannot alias it.
        p.dma_prepare(&h, &mut iommu, Gpa(0), PAGE_2M).unwrap();
        let bad = p.check_consistency(&h, &mut iommu, Gpa(0), 4 * PAGE_2M);
        assert!(bad.is_empty());
    }

    #[test]
    fn accounting_invariant_holds_across_pin_hit_and_release() {
        stellar_check::strict(|| {
            let (h, mut iommu, mut p) = setup(16 * PAGE_2M);
            // Miss (pin), hit, multi-block pin — each dma_prepare is a
            // checked quiesce point.
            p.dma_prepare(&h, &mut iommu, Gpa(0x1000), 0x2000).unwrap();
            p.dma_prepare(&h, &mut iommu, Gpa(0x3000), 0x1000).unwrap();
            p.dma_prepare(&h, &mut iommu, Gpa(4 * PAGE_2M), 2 * PAGE_2M)
                .unwrap();
            p.release_all(&mut iommu);
            p.check_invariants(&iommu, stellar_sim::SimTime::ZERO);
            assert_eq!(p.pinned_blocks(), 0);
        });
    }

    #[test]
    #[should_panic(expected = "IOMMU must be 4 KiB-granular")]
    fn rejects_coarse_iommu() {
        let (h, _, mut p) = setup(PAGE_2M);
        let mut coarse = Iommu::new(IommuConfig {
            page_size: PAGE_2M,
            ..IommuConfig::default()
        });
        let _ = p.dma_prepare(&h, &mut coarse, Gpa(0), 0x1000);
    }
}
