//! The RunD secure-container lifecycle and the Fig. 6 start-up model.
//!
//! A RunD container's boot time decomposes into:
//!
//! * microVM creation and general hypervisor overhead
//!   ([`crate::hypervisor::Hypervisor::base_boot_time`]), which grows
//!   mildly with configured memory; and
//! * the memory strategy: [`MemoryStrategy::FullPin`] (the legacy VFIO
//!   requirement — pin everything before the device is usable) or
//!   [`MemoryStrategy::Pvdma`] (no upfront pinning at all).
//!
//! With the paper's constants, a 1.6 TB container boots in ~390+ s under
//! FullPin and under 20 s with PVDMA — the ≥15× of Fig. 6.

use stellar_pcie::addr::{Gpa, Hpa, PAGE_2M};
use stellar_pcie::iommu::{Iommu, IommuConfig};
use stellar_sim::SimDuration;

use crate::hypervisor::{Hypervisor, HypervisorConfig};
use crate::pvdma::{Pvdma, PvdmaConfig};
use crate::vfio::{Vfio, VfioError};

/// How the container's memory is made DMA-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryStrategy {
    /// Pin all guest memory at boot (VFIO / pre-Stellar).
    FullPin,
    /// PVDMA: pin on demand at first DMA touch.
    Pvdma,
}

/// Container configuration.
#[derive(Debug, Clone)]
pub struct RundConfig {
    /// Guest memory size in bytes.
    pub memory_bytes: u64,
    /// Memory strategy.
    pub strategy: MemoryStrategy,
    /// Hypervisor timing model.
    pub hypervisor: HypervisorConfig,
    /// PVDMA configuration (used by [`MemoryStrategy::Pvdma`]).
    pub pvdma: PvdmaConfig,
}

impl RundConfig {
    /// A config with default timing for `memory_bytes` under `strategy`.
    pub fn new(memory_bytes: u64, strategy: MemoryStrategy) -> Self {
        RundConfig {
            memory_bytes,
            strategy,
            hypervisor: HypervisorConfig::default(),
            pvdma: PvdmaConfig::default(),
        }
    }
}

/// Where boot time went.
#[derive(Debug, Clone, Copy)]
pub struct BootReport {
    /// Total simulated boot time.
    pub total: SimDuration,
    /// MicroVM + hypervisor setup.
    pub hypervisor_setup: SimDuration,
    /// Upfront memory pinning (zero under PVDMA).
    pub memory_pin: SimDuration,
}

/// A booted RunD secure container.
#[derive(Debug)]
pub struct RundContainer {
    config: RundConfig,
    hypervisor: Hypervisor,
    pvdma: Option<Pvdma>,
    boot: BootReport,
}

impl RundContainer {
    /// Boot a container: lay out guest RAM, attach devices via VFIO
    /// semantics, and apply the memory strategy against `iommu`.
    ///
    /// `hpa_base` is where this container's host memory lives (the host
    /// allocator hands each container a disjoint window).
    pub fn boot(
        config: RundConfig,
        iommu: &mut Iommu,
        hpa_base: Hpa,
    ) -> Result<(Self, BootReport), VfioError> {
        let mut hypervisor = Hypervisor::new(config.hypervisor.clone());
        hypervisor.add_ram(Gpa(0), hpa_base, config.memory_bytes);

        let hypervisor_setup = hypervisor.base_boot_time();
        stellar_telemetry::count(stellar_telemetry::Subsystem::Virt, "rund.boot", 1);
        let (memory_pin, pvdma) = match config.strategy {
            MemoryStrategy::FullPin => {
                let mut vfio = Vfio::new();
                let pin = vfio.pin_all_memory(&hypervisor, iommu)?;
                stellar_telemetry::count(
                    stellar_telemetry::Subsystem::Virt,
                    "rund.full_pin_boot",
                    1,
                );
                (pin, None)
            }
            MemoryStrategy::Pvdma => (
                SimDuration::ZERO,
                Some(Pvdma::new(config.pvdma.clone())),
            ),
        };
        let boot = BootReport {
            total: hypervisor_setup + memory_pin,
            hypervisor_setup,
            memory_pin,
        };
        Ok((
            RundContainer {
                config,
                hypervisor,
                pvdma,
                boot,
            },
            boot,
        ))
    }

    /// The boot-time breakdown.
    pub fn boot_report(&self) -> BootReport {
        self.boot
    }

    /// The container's hypervisor.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hypervisor
    }

    /// The container's hypervisor, mutable (device-register mapping).
    pub fn hypervisor_mut(&mut self) -> &mut Hypervisor {
        &mut self.hypervisor
    }

    /// The container's PVDMA engine, if the strategy is PVDMA.
    pub fn pvdma_mut(&mut self) -> Option<&mut Pvdma> {
        self.pvdma.as_mut()
    }

    /// Both the hypervisor and PVDMA engine, mutably (DMA preparation
    /// needs the hypervisor immutably and PVDMA mutably).
    pub fn pvdma_parts(&mut self) -> Option<(&Hypervisor, &mut Pvdma)> {
        let Self {
            hypervisor, pvdma, ..
        } = self;
        pvdma.as_mut().map(|p| (&*hypervisor, p))
    }

    /// Tear the container down: release all PVDMA pins (full-pin
    /// containers keep their pins until the host reclaims the IOMMU
    /// domain, which the caller owns).
    pub fn shutdown(mut self, iommu: &mut Iommu) {
        if let Some(pvdma) = self.pvdma.as_mut() {
            pvdma.release_all(iommu);
        }
    }

    /// Configured memory size.
    pub fn memory_bytes(&self) -> u64 {
        self.config.memory_bytes
    }

    /// The memory strategy in effect.
    pub fn strategy(&self) -> MemoryStrategy {
        self.config.strategy
    }
}

/// An IOMMU configured for container boot-time experiments: 2 MiB mapping
/// granularity so that terabyte-scale guests do not materialize millions
/// of table entries (pin *cost* is still accounted per 4 KiB page).
pub fn boot_experiment_iommu() -> Iommu {
    Iommu::new(IommuConfig {
        page_size: PAGE_2M,
        ..IommuConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1024 * 1024 * 1024;

    fn boot(mem: u64, strategy: MemoryStrategy) -> BootReport {
        let mut iommu = boot_experiment_iommu();
        let (_, report) =
            RundContainer::boot(RundConfig::new(mem, strategy), &mut iommu, Hpa(1 << 40))
                .unwrap();
        report
    }

    #[test]
    fn full_pin_boot_grows_to_minutes() {
        let r = boot(1_600 * GIB, MemoryStrategy::FullPin);
        let secs = r.total.as_secs_f64();
        // Paper: "Pinning a container with 1.6 TB of memory typically
        // takes 390 seconds".
        assert!((350.0..450.0).contains(&secs), "total={secs}s");
        assert!(r.memory_pin > r.hypervisor_setup);
    }

    #[test]
    fn pvdma_boot_stays_under_20s_at_all_sizes() {
        for gib in [2, 16, 160, 1_600] {
            let r = boot(gib * GIB, MemoryStrategy::Pvdma);
            assert!(
                r.total < SimDuration::from_secs(20),
                "{gib} GiB -> {}",
                r.total
            );
            assert_eq!(r.memory_pin, SimDuration::ZERO);
        }
    }

    #[test]
    fn fig6_speedup_at_least_15x_for_large_guests() {
        let pinned = boot(1_600 * GIB, MemoryStrategy::FullPin);
        let pvdma = boot(1_600 * GIB, MemoryStrategy::Pvdma);
        let speedup = pinned.total.as_secs_f64() / pvdma.total.as_secs_f64();
        assert!(speedup >= 15.0, "speedup={speedup}");
    }

    #[test]
    fn pvdma_boot_overhead_rises_mildly_with_memory() {
        // Fig. 6: ~11 s increase between 160 GB and 1.6 TB, attributed to
        // general hypervisor overhead.
        let small = boot(160 * GIB, MemoryStrategy::Pvdma);
        let large = boot(1_600 * GIB, MemoryStrategy::Pvdma);
        let delta = large.total.as_secs_f64() - small.total.as_secs_f64();
        assert!((5.0..15.0).contains(&delta), "delta={delta}s");
    }

    #[test]
    fn booted_container_can_prepare_dma_on_demand() {
        let mut iommu = Iommu::new(IommuConfig::default());
        let (mut c, _) = RundContainer::boot(
            RundConfig::new(64 * PAGE_2M, MemoryStrategy::Pvdma),
            &mut iommu,
            Hpa(1 << 40),
        )
        .unwrap();
        let (h, p) = c.pvdma_parts().unwrap();
        let out = p.dma_prepare(h, &mut iommu, Gpa(0x1000), 0x1000).unwrap();
        assert_eq!(out.blocks_pinned, 1);
        assert_eq!(iommu.pinned_bytes(), PAGE_2M);
    }

    #[test]
    fn shutdown_releases_on_demand_pins() {
        let mut iommu = Iommu::new(IommuConfig::default());
        let (mut c, _) = RundContainer::boot(
            RundConfig::new(64 * PAGE_2M, MemoryStrategy::Pvdma),
            &mut iommu,
            Hpa(1 << 40),
        )
        .unwrap();
        {
            let (h, p) = c.pvdma_parts().unwrap();
            p.dma_prepare(h, &mut iommu, Gpa(0), 4 * PAGE_2M).unwrap();
        }
        assert_eq!(iommu.pinned_bytes(), 4 * PAGE_2M);
        c.shutdown(&mut iommu);
        assert_eq!(iommu.pinned_bytes(), 0);
    }

    #[test]
    fn full_pin_container_has_no_pvdma() {
        let mut iommu = boot_experiment_iommu();
        let (mut c, _) = RundContainer::boot(
            RundConfig::new(GIB, MemoryStrategy::FullPin),
            &mut iommu,
            Hpa(1 << 40),
        )
        .unwrap();
        assert!(c.pvdma_mut().is_none());
        assert_eq!(c.strategy(), MemoryStrategy::FullPin);
        assert_eq!(c.memory_bytes(), GIB);
    }
}
