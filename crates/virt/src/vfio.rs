//! The legacy VFIO path (Problem ②).
//!
//! VFIO hands a whole PCIe function to the guest: it maps the device's BAR
//! into the guest GPA space and programs the IOMMU so the device can DMA
//! into guest memory. Because the GPA→HPA mapping must never change under
//! the device (a swapped-out page would redirect DMA), the hypervisor must
//! **pin every page the device might touch** — for RDMA workloads, all of
//! guest memory — before the container is usable. That full pin is the
//! minute-scale start-up cost in Fig. 6.

use stellar_pcie::addr::{Gpa, Hpa, Iova};
use stellar_pcie::iommu::{Iommu, IommuError};
use stellar_sim::SimDuration;

use crate::hypervisor::Hypervisor;

/// VFIO errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfioError {
    /// IOMMU rejected a pin.
    Iommu(IommuError),
}

impl From<IommuError> for VfioError {
    fn from(e: IommuError) -> Self {
        VfioError::Iommu(e)
    }
}

impl std::fmt::Display for VfioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfioError::Iommu(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfioError {}

/// The VFIO attachment model.
#[derive(Debug, Default)]
pub struct Vfio {
    pinned_regions: u64,
}

impl Vfio {
    /// A fresh VFIO context.
    pub fn new() -> Self {
        Vfio::default()
    }

    /// Pin **all** guest RAM in the IOMMU (the pre-PVDMA requirement:
    /// "effectively means all memory inside the RunD container").
    ///
    /// Returns the simulated pin time — the dominant term of container
    /// start-up for large guests.
    pub fn pin_all_memory(
        &mut self,
        hypervisor: &Hypervisor,
        iommu: &mut Iommu,
    ) -> Result<SimDuration, VfioError> {
        let mut total = SimDuration::ZERO;
        for (gpa, hpa, len) in hypervisor.ram().extents() {
            total += iommu.pin(Iova::from_gpa(gpa), hpa, len)?;
            self.pinned_regions += 1;
        }
        Ok(total)
    }

    /// Map a device BAR into the guest at `gpa` (device-register EPT
    /// entries at 4 KiB granularity).
    pub fn map_bar(
        &mut self,
        hypervisor: &mut Hypervisor,
        gpa: Gpa,
        bar_hpa: Hpa,
        len: u64,
    ) {
        let pages = len.div_ceil(stellar_pcie::PAGE_4K);
        for i in 0..pages {
            hypervisor.map_device_register(
                Gpa(gpa.0 + i * stellar_pcie::PAGE_4K),
                Hpa(bar_hpa.0 + i * stellar_pcie::PAGE_4K),
            );
        }
    }

    /// Regions pinned so far.
    pub fn pinned_regions(&self) -> u64 {
        self.pinned_regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervisor::{HypervisorConfig, TranslateKind};
    use stellar_pcie::addr::PAGE_2M;
    use stellar_pcie::iommu::IommuConfig;

    #[test]
    fn pin_all_scales_with_guest_size() {
        // Use a 2 MiB-granular IOMMU so large guests do not materialize
        // millions of table entries in the test.
        let cost_of = |gib: u64| -> SimDuration {
            let mut h = Hypervisor::new(HypervisorConfig::default());
            h.add_ram(Gpa(0), Hpa(0x10_0000_0000), gib * 1024 * 1024 * 1024);
            let mut iommu = Iommu::new(IommuConfig {
                page_size: PAGE_2M,
                ..IommuConfig::default()
            });
            let mut vfio = Vfio::new();
            vfio.pin_all_memory(&h, &mut iommu).unwrap()
        };
        let c16 = cost_of(16);
        let c160 = cost_of(160);
        // Linear scaling within rounding.
        let ratio = c160.as_nanos() as f64 / c16.as_nanos() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio={ratio}");
        // 160 GiB ≈ 39 s — already painful; 1.6 TB would be ~390 s.
        let secs = c160.as_secs_f64();
        assert!((30.0..50.0).contains(&secs), "c160={secs}");
    }

    #[test]
    fn pin_all_registers_translations() {
        let mut h = Hypervisor::new(HypervisorConfig::default());
        h.add_ram(Gpa(0), Hpa(0x1_0000_0000), 4 * PAGE_2M);
        let mut iommu = Iommu::new(IommuConfig {
            page_size: PAGE_2M,
            ..IommuConfig::default()
        });
        let mut vfio = Vfio::new();
        vfio.pin_all_memory(&h, &mut iommu).unwrap();
        let t = iommu.translate(Iova(0x2000)).unwrap();
        assert_eq!(t.hpa, Hpa(0x1_0000_2000));
        assert_eq!(iommu.pinned_bytes(), 4 * PAGE_2M);
        assert_eq!(vfio.pinned_regions(), 1);
    }

    #[test]
    fn map_bar_creates_device_register_pages() {
        let mut h = Hypervisor::new(HypervisorConfig::default());
        h.add_ram(Gpa(0), Hpa(0x1_0000_0000), PAGE_2M);
        let mut vfio = Vfio::new();
        vfio.map_bar(
            &mut h,
            Gpa(0x8000_0000),
            Hpa(0x2000_0000),
            2 * stellar_pcie::PAGE_4K,
        );
        let (hpa, kind) = h.translate(Gpa(0x8000_1004)).unwrap();
        assert_eq!(hpa, Hpa(0x2000_1004));
        assert_eq!(kind, TranslateKind::DeviceRegister);
    }
}
