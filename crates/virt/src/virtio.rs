//! A minimal virtio device framework: control-path queues and the
//! shared-memory (shm) region.
//!
//! vStellar's control path runs over virtio: the guest posts control
//! requests (QP creation, MR registration, ...) on a virtqueue; the host
//! driver intercepts them, applies security and virtualization policy, and
//! posts completions back. [`VirtioQueue`] models that request/response
//! ring with bounded capacity.
//!
//! [`ShmRegion`] models the virtio shared-memory region feature the paper
//! uses to fix the Fig. 5 bug: an I/O window **disjoint from guest RAM**
//! into which the host maps device pages (the vDB). Because shm offsets
//! are not GPAs, PVDMA's 2 MiB RAM blocks can never swallow a doorbell
//! mapped here.

use std::collections::VecDeque;

use stellar_pcie::addr::Hpa;
use stellar_sim::SimDuration;

/// Virtio framework errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtioError {
    /// The virtqueue is full.
    QueueFull {
        /// Ring capacity.
        capacity: usize,
    },
    /// No completed request to collect.
    NoCompletion,
    /// The shm window is exhausted or the offset is out of bounds.
    ShmOutOfSpace,
    /// Shm offset not mapped.
    ShmUnmapped(u64),
}

impl std::fmt::Display for VirtioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VirtioError::QueueFull { capacity } => write!(f, "virtqueue full ({capacity})"),
            VirtioError::NoCompletion => write!(f, "no completion available"),
            VirtioError::ShmOutOfSpace => write!(f, "shm region exhausted"),
            VirtioError::ShmUnmapped(off) => write!(f, "shm offset {off:#x} unmapped"),
        }
    }
}

impl std::error::Error for VirtioError {}

/// A bounded request/response virtqueue carrying opaque request payloads.
#[derive(Debug)]
pub struct VirtioQueue<Req, Resp> {
    capacity: usize,
    pending: VecDeque<Req>,
    completed: VecDeque<Resp>,
    submitted: u64,
}

impl<Req, Resp> VirtioQueue<Req, Resp> {
    /// A queue with the given ring capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "virtqueue capacity must be positive");
        VirtioQueue {
            capacity,
            pending: VecDeque::new(),
            completed: VecDeque::new(),
            submitted: 0,
        }
    }

    /// Guest side: post a request descriptor.
    pub fn post(&mut self, req: Req) -> Result<(), VirtioError> {
        if self.pending.len() + self.completed.len() >= self.capacity {
            return Err(VirtioError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.pending.push_back(req);
        self.submitted += 1;
        Ok(())
    }

    /// Host side: take the next pending request to process.
    pub fn take_pending(&mut self) -> Option<Req> {
        self.pending.pop_front()
    }

    /// Host side: post a completion back to the guest.
    pub fn complete(&mut self, resp: Resp) {
        self.completed.push_back(resp);
    }

    /// Guest side: collect a completion.
    pub fn collect(&mut self) -> Result<Resp, VirtioError> {
        self.completed.pop_front().ok_or(VirtioError::NoCompletion)
    }

    /// `(pending, completed)` depths.
    pub fn depths(&self) -> (usize, usize) {
        (self.pending.len(), self.completed.len())
    }

    /// Total requests ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}

/// A virtio shared-memory region: a window of device-visible offsets,
/// disjoint from guest RAM, into which the host maps device pages.
#[derive(Debug)]
pub struct ShmRegion {
    len: u64,
    page_size: u64,
    maps: Vec<(u64, Hpa)>, // (offset, hpa), page-granular
}

impl ShmRegion {
    /// A region of `len` bytes with `page_size`-granular mappings.
    pub fn new(len: u64, page_size: u64) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        ShmRegion {
            len,
            page_size,
            maps: Vec::new(),
        }
    }

    /// Map one device page at the first free offset; returns the offset.
    pub fn map_page(&mut self, hpa: Hpa) -> Result<u64, VirtioError> {
        let mut offset = 0;
        while self.maps.iter().any(|&(o, _)| o == offset) {
            offset += self.page_size;
        }
        if offset + self.page_size > self.len {
            return Err(VirtioError::ShmOutOfSpace);
        }
        self.maps.push((offset, hpa));
        Ok(offset)
    }

    /// Unmap the page at `offset`.
    pub fn unmap_page(&mut self, offset: u64) -> Result<(), VirtioError> {
        let before = self.maps.len();
        self.maps.retain(|&(o, _)| o != offset);
        if self.maps.len() == before {
            return Err(VirtioError::ShmUnmapped(offset));
        }
        Ok(())
    }

    /// Resolve an shm offset to the backing device page.
    pub fn translate(&self, offset: u64) -> Result<Hpa, VirtioError> {
        let base = offset & !(self.page_size - 1);
        self.maps
            .iter()
            .find(|&&(o, _)| o == base)
            .map(|&(_, hpa)| Hpa(hpa.0 + (offset - base)))
            .ok_or(VirtioError::ShmUnmapped(offset))
    }

    /// Mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.maps.len()
    }
}

/// A virtio device: a control queue plus an optional shm region.
///
/// `Req`/`Resp` are defined by the device class (vStellar's control
/// messages live in `stellar-core`).
#[derive(Debug)]
pub struct VirtioDevice<Req, Resp> {
    /// Control virtqueue.
    pub control: VirtioQueue<Req, Resp>,
    /// Shared-memory window (e.g. for the vDB).
    pub shm: ShmRegion,
    /// Latency of one guest↔host control round trip (vmexit + host work).
    pub control_latency: SimDuration,
}

impl<Req, Resp> VirtioDevice<Req, Resp> {
    /// A device with a control ring of `queue_depth` and an shm window of
    /// `shm_len` bytes.
    pub fn new(queue_depth: usize, shm_len: u64, shm_page: u64) -> Self {
        VirtioDevice {
            control: VirtioQueue::new(queue_depth),
            shm: ShmRegion::new(shm_len, shm_page),
            control_latency: SimDuration::from_micros(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_pcie::addr::PAGE_4K;

    #[test]
    fn queue_round_trip() {
        let mut q: VirtioQueue<&str, u32> = VirtioQueue::new(4);
        q.post("create qp").unwrap();
        q.post("reg mr").unwrap();
        assert_eq!(q.depths(), (2, 0));
        let r = q.take_pending().unwrap();
        assert_eq!(r, "create qp");
        q.complete(7);
        assert_eq!(q.collect().unwrap(), 7);
        assert_eq!(q.collect(), Err(VirtioError::NoCompletion));
        assert_eq!(q.submitted(), 2);
    }

    #[test]
    fn queue_capacity_counts_inflight_and_uncollected() {
        let mut q: VirtioQueue<u8, u8> = VirtioQueue::new(2);
        q.post(1).unwrap();
        q.post(2).unwrap();
        assert_eq!(q.post(3), Err(VirtioError::QueueFull { capacity: 2 }));
        let r = q.take_pending().unwrap();
        q.complete(r);
        // Completion still occupies the ring until collected.
        assert_eq!(q.post(3), Err(VirtioError::QueueFull { capacity: 2 }));
        q.collect().unwrap();
        q.post(3).unwrap();
    }

    #[test]
    fn shm_map_translate_unmap() {
        let mut shm = ShmRegion::new(4 * PAGE_4K, PAGE_4K);
        let off = shm.map_page(Hpa(0x2000_0000)).unwrap();
        assert_eq!(off, 0);
        assert_eq!(shm.translate(off + 0x10).unwrap(), Hpa(0x2000_0010));
        let off2 = shm.map_page(Hpa(0x2000_1000)).unwrap();
        assert_eq!(off2, PAGE_4K);
        shm.unmap_page(off).unwrap();
        assert_eq!(shm.translate(0x10), Err(VirtioError::ShmUnmapped(0x10)));
        // Freed offset is reused.
        assert_eq!(shm.map_page(Hpa(0x3000_0000)).unwrap(), 0);
    }

    #[test]
    fn shm_window_is_bounded() {
        let mut shm = ShmRegion::new(PAGE_4K, PAGE_4K);
        shm.map_page(Hpa(0x1000)).unwrap();
        assert_eq!(shm.map_page(Hpa(0x2000)), Err(VirtioError::ShmOutOfSpace));
    }

    #[test]
    fn device_composition() {
        let dev: VirtioDevice<u8, u8> = VirtioDevice::new(64, 16 * PAGE_4K, PAGE_4K);
        assert_eq!(dev.shm.mapped_pages(), 0);
        assert!(dev.control_latency > SimDuration::ZERO);
    }
}
