//! Pinned smoke test for secure-container boot (Fig. 6 inputs): exact
//! boot-time decompositions for a FullPin and a PVDMA container of the
//! same size. The hypervisor and pinning timing models are
//! deterministic, so these are golden values; re-pin only for an
//! intentional timing-model change.

use stellar_pcie::Hpa;
use stellar_virt::rund::boot_experiment_iommu;
use stellar_virt::{BootReport, MemoryStrategy, RundConfig, RundContainer};

const GIB: u64 = 1024 * 1024 * 1024;

fn boot(mem: u64, strategy: MemoryStrategy) -> BootReport {
    let mut iommu = boot_experiment_iommu();
    let (_, report) =
        RundContainer::boot(RundConfig::new(mem, strategy), &mut iommu, Hpa(1 << 40)).unwrap();
    report
}

#[test]
fn boot_decomposition_is_pinned_for_a_16_gib_guest() {
    let pinned = boot(16 * GIB, MemoryStrategy::FullPin);
    assert_eq!(pinned.total.as_nanos(), 10_523_904_720);
    assert_eq!(pinned.hypervisor_setup.as_nanos(), 6_623_200_000);
    assert_eq!(pinned.memory_pin.as_nanos(), 3_900_704_720);

    let pvdma = boot(16 * GIB, MemoryStrategy::Pvdma);
    assert_eq!(pvdma.total.as_nanos(), 6_623_200_000);
    assert_eq!(pvdma.hypervisor_setup.as_nanos(), 6_623_200_000);
    assert_eq!(pvdma.memory_pin.as_nanos(), 0);

    // PVDMA's whole advantage is the vanished pin stage: the totals must
    // differ by exactly the FullPin pin time.
    assert_eq!(pinned.total - pvdma.total, pinned.memory_pin);
}

#[test]
fn boot_is_deterministic_across_repeat_runs() {
    let a = boot(2 * GIB, MemoryStrategy::FullPin);
    let b = boot(2 * GIB, MemoryStrategy::FullPin);
    assert_eq!(a.total, b.total);
    assert_eq!(a.memory_pin, b.memory_pin);
}
