//! Ring AllReduce over the simulated fabric (Figs. 10 and 11).
//!
//! Each job is a ring of ranks (one NIC per rank). One AllReduce of
//! `data_bytes` per rank proceeds in `2(N-1)` steps; in step *k* every
//! rank sends one `data/N` chunk to its successor and may only send step
//! *k+1* after receiving step *k* — the causal chain that makes AllReduce
//! latency-sensitive. Bus bandwidth uses the standard
//! `size × 2(N−1)/N ÷ time` normalization so results are comparable
//! across ring sizes (what Fig. 10's y-axis reports).
//!
//! Multiple jobs can share the fabric (the Fig. 10 background jobs), and
//! a job can run bursty — `run_iters` AllReduces, then an off period —
//! reproducing the paper's 5 s-on/5 s-off background.

use std::collections::HashMap;

use stellar_net::{Fabric, NicId};
use stellar_sim::{SimDuration, SimTime};
use stellar_transport::{App, ConnId, MsgId, TransportSim};

/// On/off schedule for a bursty job.
#[derive(Debug, Clone, Copy)]
pub struct BurstSchedule {
    /// Consecutive AllReduce iterations per burst.
    pub run_iters: u32,
    /// Idle time between bursts.
    pub pause: SimDuration,
}

/// One AllReduce job description.
#[derive(Debug, Clone)]
pub struct AllReduceJob {
    /// Ranks in ring order.
    pub nics: Vec<NicId>,
    /// AllReduce payload per rank.
    pub data_bytes: u64,
    /// Total AllReduce iterations to run.
    pub iterations: u32,
    /// Optional bursty schedule.
    pub burst: Option<BurstSchedule>,
}

/// Completed-iteration record.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// Iteration index.
    pub iter: u32,
    /// Start time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl IterationRecord {
    /// Iteration wall time.
    pub fn duration(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }
}

/// Per-job results.
#[derive(Debug, Clone)]
pub struct AllReduceReport {
    /// Ring size.
    pub ranks: usize,
    /// Completed iterations.
    pub iterations: Vec<IterationRecord>,
    /// Payload per rank.
    pub data_bytes: u64,
}

impl AllReduceReport {
    /// Bus bandwidth of one iteration in GB/s (NCCL convention):
    /// `size × 2(N−1)/N / time`.
    pub fn bus_bandwidth_gbs(&self, iter: usize) -> f64 {
        let rec = &self.iterations[iter];
        let n = self.ranks as f64;
        let algo_bytes = self.data_bytes as f64 * 2.0 * (n - 1.0) / n;
        algo_bytes / rec.duration().as_nanos() as f64 // bytes/ns == GB/s
    }

    /// Mean bus bandwidth over all completed iterations, GB/s.
    pub fn mean_bus_bandwidth_gbs(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        (0..self.iterations.len())
            .map(|i| self.bus_bandwidth_gbs(i))
            .sum::<f64>()
            / self.iterations.len() as f64
    }
}

struct JobState {
    job: AllReduceJob,
    /// conns[i]: rank i → rank (i+1) % N.
    conns: Vec<ConnId>,
    chunk: u64,
    steps_total: u32,
    /// Steps received by each rank this iteration.
    recv_steps: Vec<u32>,
    ranks_done: usize,
    iter: u32,
    iter_started: SimTime,
    records: Vec<IterationRecord>,
    finished: bool,
}

/// Drives one or more AllReduce jobs as a transport [`App`].
pub struct AllReduceRunner {
    jobs: Vec<JobState>,
    by_conn: HashMap<ConnId, (usize, usize)>, // conn -> (job, receiver rank)
}

impl AllReduceRunner {
    /// Create the runner and open every ring connection in `sim`.
    pub fn new<F: Fabric>(sim: &mut TransportSim<F>, jobs: Vec<AllReduceJob>) -> Self {
        let mut runner = AllReduceRunner {
            jobs: Vec::new(),
            by_conn: HashMap::new(),
        };
        for job in jobs {
            runner.add_job(sim, job);
        }
        runner
    }

    /// Add one more ring mid-run (a tenant admitted by a scheduler),
    /// opening its connections in `sim`. Returns the job index; the
    /// caller kicks it off with [`start_job`](Self::start_job).
    pub fn add_job<F: Fabric>(&mut self, sim: &mut TransportSim<F>, job: AllReduceJob) -> usize {
        let j = self.jobs.len();
        let n = job.nics.len();
        assert!(n >= 2, "a ring needs at least two ranks");
        assert!(job.data_bytes >= n as u64, "data too small for the ring");
        let mut conns = Vec::with_capacity(n);
        for i in 0..n {
            let src = job.nics[i];
            let dst = job.nics[(i + 1) % n];
            let c = sim.add_connection(src, dst);
            self.by_conn.insert(c, (j, (i + 1) % n));
            conns.push(c);
        }
        let chunk = (job.data_bytes / n as u64).max(1);
        self.jobs.push(JobState {
            steps_total: 2 * (n as u32 - 1),
            chunk,
            conns,
            recv_steps: vec![0; n],
            ranks_done: 0,
            iter: 0,
            iter_started: SimTime::ZERO,
            records: Vec::new(),
            finished: false,
            job,
        });
        j
    }

    /// Kick off iteration 0 of every job.
    pub fn start<F: Fabric>(&mut self, sim: &mut TransportSim<F>) {
        for j in 0..self.jobs.len() {
            self.start_iteration(sim, j);
        }
    }

    /// Kick off iteration 0 of job `j` alone (a late-admitted ring).
    pub fn start_job<F: Fabric>(&mut self, sim: &mut TransportSim<F>, j: usize) {
        self.start_iteration(sim, j);
    }

    fn start_iteration<F: Fabric>(&mut self, sim: &mut TransportSim<F>, j: usize) {
        let st = &mut self.jobs[j];
        st.iter_started = sim.now();
        st.recv_steps.iter_mut().for_each(|s| *s = 0);
        st.ranks_done = 0;
        for &c in &st.conns {
            sim.post_message(c, st.chunk);
        }
    }

    /// Whether every job finished all its iterations.
    pub fn all_finished(&self) -> bool {
        self.jobs.iter().all(|j| j.finished)
    }

    /// Whether job `j` finished all its iterations.
    pub fn job_finished(&self, j: usize) -> bool {
        self.jobs[j].finished
    }

    /// The ring connections of job `j` (`conns[i]`: rank i → rank i+1).
    pub fn job_conns(&self, j: usize) -> &[ConnId] {
        &self.jobs[j].conns
    }

    /// Number of jobs registered (finished or not).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The report for job `j`.
    pub fn report(&self, j: usize) -> AllReduceReport {
        let st = &self.jobs[j];
        AllReduceReport {
            ranks: st.job.nics.len(),
            iterations: st.records.clone(),
            data_bytes: st.job.data_bytes,
        }
    }
}

impl<F: Fabric> App<F> for AllReduceRunner {
    fn on_message_complete(&mut self, sim: &mut TransportSim<F>, conn: ConnId, _msg: MsgId) {
        let Some(&(j, rank)) = self.by_conn.get(&conn) else {
            return; // not ours (foreign traffic sharing the sim)
        };
        let now = sim.now();
        let st = &mut self.jobs[j];
        if st.finished {
            return;
        }
        st.recv_steps[rank] += 1;
        let steps = st.recv_steps[rank];
        if steps < st.steps_total {
            // Causal chain: receiving step k enables sending step k+1.
            let out = st.conns[rank];
            let chunk = st.chunk;
            sim.post_message(out, chunk);
            return;
        }
        st.ranks_done += 1;
        if st.ranks_done < st.job.nics.len() {
            return;
        }
        // Iteration complete.
        st.records.push(IterationRecord {
            iter: st.iter,
            started: st.iter_started,
            finished: now,
        });
        st.iter += 1;
        if st.iter >= st.job.iterations {
            st.finished = true;
            return;
        }
        match st.job.burst {
            Some(b) if st.iter.is_multiple_of(b.run_iters) => {
                // Off period, then resume via timer (token = job index).
                sim.schedule_timer(now + b.pause, j as u64);
            }
            _ => self.start_iteration(sim, j),
        }
    }

    fn on_timer(&mut self, sim: &mut TransportSim<F>, token: u64) {
        let j = token as usize;
        if j < self.jobs.len() && !self.jobs[j].finished {
            self.start_iteration(sim, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_net::{ClosConfig, ClosTopology, Network, NetworkConfig};
    use stellar_sim::SimRng;
    use stellar_transport::{PathAlgo, TransportConfig};

    const FOREVER: SimTime = SimTime::from_nanos(u64::MAX / 2);

    fn sim(algo: PathAlgo, paths: u32, seed: u64) -> TransportSim {
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 8,
            rails: 1,
            planes: 2,
            aggs_per_plane: 16,
        });
        let rng = SimRng::from_seed(seed);
        let net = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        TransportSim::new(
            net,
            TransportConfig {
                algo,
                num_paths: paths,
                ..TransportConfig::default()
            },
            rng.fork("t"),
        )
    }

    fn ring(sim: &TransportSim, hosts: &[usize]) -> Vec<NicId> {
        hosts
            .iter()
            .map(|&h| sim.network().topology().nic(h, 0))
            .collect()
    }

    #[test]
    fn allreduce_completes_all_iterations() {
        let mut s = sim(PathAlgo::Obs, 128, 1);
        let nics = ring(&s, &[0, 2, 8, 10]);
        let mut runner = AllReduceRunner::new(
            &mut s,
            vec![AllReduceJob {
                nics,
                data_bytes: 4 * 1024 * 1024,
                iterations: 3,
                burst: None,
            }],
        );
        runner.start(&mut s);
        s.run(&mut runner, FOREVER);
        assert!(runner.all_finished());
        // A finished run holds neither terminally-failed nor
        // still-recovering connections.
        assert_eq!(s.failed_connections(), 0);
        assert_eq!(s.recovering_count(), 0);
        let rep = runner.report(0);
        assert_eq!(rep.iterations.len(), 3);
        assert!(rep.mean_bus_bandwidth_gbs() > 1.0);
    }

    #[test]
    fn bus_bandwidth_is_sane_for_ring() {
        // 8 ranks on one segment, big payload: busbw approaches the
        // dual-plane NIC limit (2 × 200 Gbps = 50 GB/s — the paper's
        // "fully utilize the RNIC's bandwidth (50 GB/s)") from below.
        let mut s = sim(PathAlgo::Obs, 128, 2);
        let nics = ring(&s, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut runner = AllReduceRunner::new(
            &mut s,
            vec![AllReduceJob {
                nics,
                data_bytes: 16 * 1024 * 1024,
                iterations: 2,
                burst: None,
            }],
        );
        runner.start(&mut s);
        s.run(&mut runner, FOREVER);
        let bw = runner.report(0).mean_bus_bandwidth_gbs();
        assert!((2.0..50.0).contains(&bw), "busbw={bw}");
    }

    #[test]
    fn concurrent_jobs_share_the_fabric() {
        let mut s = sim(PathAlgo::Obs, 128, 3);
        let a = ring(&s, &[0, 8]);
        let b = ring(&s, &[1, 9]);
        let mut runner = AllReduceRunner::new(
            &mut s,
            vec![
                AllReduceJob {
                    nics: a,
                    data_bytes: 2 * 1024 * 1024,
                    iterations: 2,
                    burst: None,
                },
                AllReduceJob {
                    nics: b,
                    data_bytes: 2 * 1024 * 1024,
                    iterations: 2,
                    burst: None,
                },
            ],
        );
        runner.start(&mut s);
        s.run(&mut runner, FOREVER);
        assert!(runner.all_finished());
        assert_eq!(runner.report(0).iterations.len(), 2);
        assert_eq!(runner.report(1).iterations.len(), 2);
    }

    #[test]
    fn bursty_job_pauses_between_bursts() {
        let mut s = sim(PathAlgo::Obs, 128, 4);
        let nics = ring(&s, &[0, 8]);
        let pause = SimDuration::from_millis(5);
        let mut runner = AllReduceRunner::new(
            &mut s,
            vec![AllReduceJob {
                nics,
                data_bytes: 256 * 1024,
                iterations: 4,
                burst: Some(BurstSchedule {
                    run_iters: 2,
                    pause,
                }),
            }],
        );
        runner.start(&mut s);
        s.run(&mut runner, FOREVER);
        let rep = runner.report(0);
        assert_eq!(rep.iterations.len(), 4);
        // Gap between iteration 1 and 2 includes the pause.
        let gap = rep.iterations[2]
            .started
            .duration_since(rep.iterations[1].finished);
        assert!(gap >= pause, "gap={gap}");
        // Gap between 0 and 1 does not.
        let gap01 = rep.iterations[1]
            .started
            .duration_since(rep.iterations[0].finished);
        assert!(gap01 < pause);
    }

    #[test]
    fn fig10_shape_background_hurts_single_path_more_than_spray() {
        let run = |algo: PathAlgo, paths: u32| -> f64 {
            let mut s = sim(algo, paths, 5);
            let probe = ring(&s, &[0, 1, 8, 9]);
            let bg1 = ring(&s, &[2, 3, 10, 11]);
            let bg2 = ring(&s, &[4, 5, 12, 13]);
            let mk = |nics: Vec<NicId>, iters: u32| AllReduceJob {
                nics,
                data_bytes: 4 * 1024 * 1024,
                iterations: iters,
                burst: None,
            };
            let mut runner = AllReduceRunner::new(
                &mut s,
                vec![mk(probe, 3), mk(bg1, 12), mk(bg2, 12)],
            );
            runner.start(&mut s);
            s.run(&mut runner, FOREVER);
            runner.report(0).mean_bus_bandwidth_gbs()
        };
        let single = run(PathAlgo::SinglePath, 1);
        let spray = run(PathAlgo::Obs, 128);
        assert!(
            spray > single,
            "spray busbw {spray} should beat single-path {single}"
        );
    }
}
