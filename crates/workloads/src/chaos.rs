//! Chaos scenarios: AllReduce under multi-fault [`FaultPlan`]s (§7.2's
//! availability story pushed past the single-link case).
//!
//! [`run_chaos`] runs the same seeded AllReduce twice: once healthy
//! (calibration — measures the fault-free bus bandwidth and the mean
//! iteration time used to anchor the fault schedule on the simulation
//! clock), once with the scenario's fault plan installed. Iterations are
//! then classified into the paper's three recovery phases — healthy,
//! RTO/scoreboard-bridged, and post-reroute — and the run is scored with
//! a graceful-degradation [`Verdict`]. Everything is derived from
//! simulated time and seeded randomness; wall clocks never appear.

use stellar_net::fixture::packet_fabric;
use stellar_net::{ClosConfig, DropReason, Fabric, FaultPlan, LinkId, NetworkConfig, NicId};
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::{
    App, ConnId, FatalError, MsgId, PathAlgo, PlaneFailover, RecoveryPolicy, ScoreboardPolicy,
    TransportConfig, TransportSim,
};

use crate::allreduce::{AllReduceJob, AllReduceRunner};

/// The fault scenario to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// A seeded storm of short link flaps across the uplinks the job's
    /// paths actually cross.
    FlapStorm,
    /// Cascading aggregation-switch deaths (no recovery — replacement
    /// hardware takes hours).
    SwitchDeath,
    /// One optical module degrading slowly: loss probability ramps from
    /// zero instead of jumping.
    SlowOptics,
    /// Flap storm plus one switch death mid-storm — the acceptance
    /// compound plan.
    Compound,
}

impl ChaosScenario {
    /// Stable lowercase name (bench table rows, CLI).
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::FlapStorm => "flap_storm",
            ChaosScenario::SwitchDeath => "switch_death",
            ChaosScenario::SlowOptics => "slow_optics",
            ChaosScenario::Compound => "compound",
        }
    }

    /// All scenarios, in table order.
    pub const ALL: [ChaosScenario; 4] = [
        ChaosScenario::FlapStorm,
        ChaosScenario::SwitchDeath,
        ChaosScenario::SlowOptics,
        ChaosScenario::Compound,
    ];
}

/// Chaos-run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Scenario to inject.
    pub scenario: ChaosScenario,
    /// Ring size.
    pub ranks: usize,
    /// AllReduce payload per rank.
    pub data_bytes: u64,
    /// Iterations to run.
    pub iterations: u32,
    /// Faults start after roughly this many healthy iterations.
    pub fail_after_iter: u32,
    /// Path algorithm.
    pub algo: PathAlgo,
    /// Paths per connection.
    pub num_paths: u32,
    /// BGP convergence delay.
    pub bgp_convergence: SimDuration,
    /// Per-packet retry budget (see `TransportConfig::retry_budget`).
    pub retry_budget: u32,
    /// RTO backoff factor (1.0 = the unhardened fixed RTO).
    pub rto_backoff: f64,
    /// Loss-scoreboard policy.
    pub scoreboard: ScoreboardPolicy,
    /// Failure recovery policy handed to the transport. `None` (the
    /// default) keeps the pre-recovery behaviour: a connection that
    /// exhausts its retry budget dies terminally.
    pub recovery: Option<RecoveryPolicy>,
    /// Plane-level failover for the path scoreboard (`None` = per-path
    /// blacklisting only).
    pub plane_failover: Option<PlaneFailover>,
    /// Seed for fabric, transport, and fault plan.
    pub seed: u64,
    /// Restrict the scenario's fault plan to these indices into its
    /// time-sorted event list (`None` = the full plan). Produced by
    /// [`shrink_failing_chaos`] when bisecting a failure down to the
    /// events that actually cause it.
    pub plan_keep: Option<Vec<usize>>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            scenario: ChaosScenario::Compound,
            ranks: 8,
            data_bytes: 8 * 1024 * 1024,
            iterations: 12,
            fail_after_iter: 3,
            algo: PathAlgo::Obs,
            num_paths: 128,
            bgp_convergence: SimDuration::from_millis(2),
            retry_budget: 16,
            rto_backoff: 2.0,
            scoreboard: ScoreboardPolicy::default(),
            recovery: None,
            plane_failover: None,
            seed: 7,
            plan_keep: None,
        }
    }
}

/// Graceful-degradation verdict for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Bridged busbw ≥ 60% of healthy and post-reroute ≥ 90%: the
    /// transport rode through the faults (the paper's §7.2 claim).
    Graceful,
    /// Recovered post-reroute (≥ 90%) but the bridged window dipped
    /// below 60% of healthy.
    Degraded,
    /// Never recovered to 90% of healthy after the reroute window.
    Collapsed,
    /// At least one connection hit its retry budget and reported a
    /// terminal error.
    TransportError,
}

impl Verdict {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Graceful => "graceful",
            Verdict::Degraded => "degraded",
            Verdict::Collapsed => "collapsed",
            Verdict::TransportError => "transport_error",
        }
    }
}

/// Output of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The scenario that ran.
    pub scenario: ChaosScenario,
    /// Mean busbw of the fault-free calibration run, GB/s.
    pub healthy_busbw_gbs: f64,
    /// Per-iteration busbw of the chaos run, GB/s, in order.
    pub busbw_gbs: Vec<f64>,
    /// Mean busbw of iterations finishing before the first fault.
    pub before: Option<f64>,
    /// Mean busbw of iterations overlapping the fault window (first
    /// fault → last transition + BGP convergence).
    pub bridged: Option<f64>,
    /// Mean busbw of iterations starting after the reroute settled.
    pub after: Option<f64>,
    /// First scheduled fault.
    pub fault_start: SimTime,
    /// Where the post-recovery phase begins
    /// ([`FaultPlan::recovery_time`]): restored links count at their up
    /// event, permanent deaths after BGP convergence, ramps at ramp end.
    pub recovered_at: SimTime,
    /// Fabric drop counts by reason, in [`DropReason::ALL`] order.
    pub drops_by_reason: Vec<(DropReason, u64)>,
    /// Total retransmissions across all connections.
    pub retransmits: u64,
    /// Completed connection recovery cycles (0 without a
    /// [`RecoveryPolicy`]).
    pub recoveries: u64,
    /// Packets replayed by recovery re-establishment.
    pub replayed_packets: u64,
    /// Per-recovery downtimes, in completion order.
    pub recovery_downtimes: Vec<SimDuration>,
    /// Connections that died with a *terminal* fatal error (a connection
    /// that recovered does not appear here).
    pub errors: Vec<(ConnId, FatalError)>,
    /// Iterations completed (the job may stall on a dead connection).
    pub iterations_completed: u32,
    /// The verdict.
    pub verdict: Verdict,
}

struct ErrorWatch {
    runner: AllReduceRunner,
    errors: Vec<(ConnId, FatalError)>,
    recovered: Vec<(ConnId, SimDuration)>,
}

impl<F: Fabric> App<F> for ErrorWatch {
    fn on_message_complete(&mut self, sim: &mut TransportSim<F>, conn: ConnId, msg: MsgId) {
        self.runner.on_message_complete(sim, conn, msg);
    }
    fn on_timer(&mut self, sim: &mut TransportSim<F>, token: u64) {
        self.runner.on_timer(sim, token);
    }
    fn on_connection_error(&mut self, _sim: &mut TransportSim<F>, conn: ConnId, error: FatalError) {
        self.errors.push((conn, error));
    }
    fn on_connection_recovered(
        &mut self,
        _sim: &mut TransportSim<F>,
        conn: ConnId,
        downtime: SimDuration,
    ) {
        self.recovered.push((conn, downtime));
    }
}

/// The chaos topology: 2 planes × 60 aggs = the production 120-way path
/// fan-out; losing a few slots to faults is survivable by construction
/// (§7.2).
fn chaos_clos(config: &ChaosConfig) -> ClosConfig {
    ClosConfig {
        segments: 2,
        hosts_per_segment: config.ranks / 2,
        rails: 1,
        planes: 2,
        aggs_per_plane: 60,
    }
}

fn chaos_net(config: &ChaosConfig) -> NetworkConfig {
    NetworkConfig {
        bgp_convergence: config.bgp_convergence,
        ..NetworkConfig::default()
    }
}

/// Ring alternating across segments so every edge crosses the agg layer.
fn ring_nics<F: Fabric>(config: &ChaosConfig, sim: &TransportSim<F>) -> Vec<NicId> {
    (0..config.ranks)
        .map(|r| {
            let host = (r / 2) + (r % 2) * (config.ranks / 2);
            sim.network().topology().nic(host, 0)
        })
        .collect()
}

fn chaos_transport(config: &ChaosConfig) -> TransportConfig {
    TransportConfig {
        algo: config.algo,
        num_paths: config.num_paths,
        retry_budget: config.retry_budget,
        rto_backoff: config.rto_backoff,
        scoreboard: config.scoreboard,
        recovery: config.recovery.clone(),
        plane_failover: config.plane_failover,
        ..TransportConfig::default()
    }
}

/// Build the chaos simulator on any [`Fabric`]. The builder closure is
/// the same shape the failure-timeline and scale experiments use
/// (`|clos, net, rng| hybrid_fabric(clos, net, HybridConfig::default(),
/// rng)`); it is `Fn` rather than `FnOnce` because a chaos run builds
/// the fabric twice — once for calibration, once for the chaos pass.
pub fn build_sim_with<F: Fabric>(
    config: &ChaosConfig,
    build: &impl Fn(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> (TransportSim<F>, Vec<NicId>) {
    let rng = SimRng::from_seed(config.seed);
    let network = build(chaos_clos(config), chaos_net(config), &rng);
    let sim = TransportSim::new(network, chaos_transport(config), rng.fork("transport"));
    let nics = ring_nics(config, &sim);
    (sim, nics)
}

fn build_sim(config: &ChaosConfig) -> (TransportSim, Vec<NicId>) {
    build_sim_with(config, &|clos, net, rng| packet_fabric(clos, net, rng))
}

/// The distinct fabric links the ring's first connection can cross at its
/// ToR→Agg hop — the storm's target set (faults that no path crosses
/// would be theater, not chaos).
fn uplinks_of_first_conn<F: Fabric>(
    sim: &TransportSim<F>,
    nics: &[NicId],
    num_paths: u32,
) -> Vec<LinkId> {
    let topo = sim.network().topology();
    let mut links: Vec<LinkId> = (0..num_paths)
        .map(|p| topo.route(nics[0], nics[1], 0, p)[1])
        .collect();
    links.sort_by_key(|l| l.0);
    links.dedup();
    links
}

/// `d × k` (SimDuration deliberately has no Mul to keep unit mistakes
/// loud; fault scheduling is the one place scaling is natural).
fn scale(d: SimDuration, num: u64, den: u64) -> SimDuration {
    SimDuration::from_nanos((d.as_nanos() * num / den).max(1))
}

fn build_plan<F: Fabric>(
    config: &ChaosConfig,
    sim: &TransportSim<F>,
    nics: &[NicId],
    iter_time: SimDuration,
) -> FaultPlan {
    let t0 = SimTime::ZERO + scale(iter_time, config.fail_after_iter as u64, 1);
    // Storms fit inside roughly one iteration: faults are bridged by
    // RTO + scoreboard, and the claim under test is that an iteration
    // overlapping the storm degrades bounded-ly — not that bandwidth is
    // magically conjured while links are down.
    let window = iter_time;
    let uplinks = uplinks_of_first_conn(sim, nics, config.num_paths);
    // Spread the storm over ~8 distinct uplinks of the fan-out.
    let stride = (uplinks.len() / 8).max(1);
    let storm_links: Vec<LinkId> = uplinks.iter().copied().step_by(stride).take(8).collect();
    let topo = sim.network().topology();
    // The agg switch carrying the first connection's path 0 — for
    // SinglePath that is the one route the whole job hinges on.
    let victim_link = topo.route(nics[0], nics[1], 0, 0)[1];
    let (_, victim_agg) = topo.link_endpoints(victim_link);
    let plan = FaultPlan::new(config.seed);
    match config.scenario {
        ChaosScenario::FlapStorm => plan.flap_storm(
            &storm_links,
            t0,
            window,
            8,
            scale(iter_time, 1, 8),
            scale(iter_time, 1, 4),
        ),
        ChaosScenario::SwitchDeath => {
            // Two aggs die back to back; ensure the second is distinct.
            let second = topo.route(nics[0], nics[1], 0, 1)[1];
            let (_, agg2) = topo.link_endpoints(second);
            let victims = if agg2 != victim_agg {
                vec![victim_agg, agg2]
            } else {
                vec![victim_agg]
            };
            plan.cascade(&victims, t0, scale(iter_time, 1, 2))
        }
        ChaosScenario::SlowOptics => plan.degrade(t0, victim_link, 0.0, 0.15, window),
        ChaosScenario::Compound => plan
            .flap_storm(
                &storm_links,
                t0,
                window,
                8,
                scale(iter_time, 1, 8),
                scale(iter_time, 1, 4),
            )
            .switch_down(t0 + scale(iter_time, 1, 2), victim_agg),
    }
}

/// The scenario's plan, filtered to the `plan_keep` subset when one is
/// set (indices into the full plan's time-sorted event list).
fn effective_plan<F: Fabric>(
    config: &ChaosConfig,
    sim: &TransportSim<F>,
    nics: &[NicId],
    iter_time: SimDuration,
) -> FaultPlan {
    let full = build_plan(config, sim, nics, iter_time).into_events();
    let events = match &config.plan_keep {
        Some(keep) => keep.iter().filter_map(|&i| full.get(i).copied()).collect(),
        None => full,
    };
    FaultPlan::from_events(config.seed, events)
}

/// Run the calibration pass: fault-free, same seed. Returns the mean
/// busbw (GB/s) and mean iteration time, plus the spent simulator so the
/// chaos pass can [`TransportSim::reset`] it instead of reallocating.
fn calibrate_with<F: Fabric>(
    config: &ChaosConfig,
    build: &impl Fn(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> (f64, SimDuration, TransportSim<F>) {
    let (mut sim, nics) = build_sim_with(config, build);
    let mut runner = AllReduceRunner::new(
        &mut sim,
        vec![AllReduceJob {
            nics,
            data_bytes: config.data_bytes,
            iterations: config.iterations,
            burst: None,
        }],
    );
    runner.start(&mut sim);
    sim.run(&mut runner, SimTime::from_nanos(u64::MAX / 2));
    assert!(runner.all_finished(), "calibration run must finish");
    let report = runner.report(0);
    let total: SimDuration = report
        .iterations
        .iter()
        .map(|r| r.duration())
        .fold(SimDuration::ZERO, |a, d| a + d);
    let mean_iter = SimDuration::from_nanos(
        (total.as_nanos() / report.iterations.len() as u64).max(1),
    );
    (report.mean_bus_bandwidth_gbs(), mean_iter, sim)
}

/// Run one chaos scenario (calibration + chaos pass) on the packet-level
/// [`Network`].
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    run_chaos_with(config, &|clos, net, rng| packet_fabric(clos, net, rng))
}

/// Run one chaos scenario on any [`Fabric`] — the hybrid packet/fluid
/// fabric included, which is how chaos reaches 4k+-rank jobs. The
/// builder is invoked twice (calibration fabric, then chaos fabric) with
/// identical arguments, so both passes see the same seeded network.
pub fn run_chaos_with<F: Fabric>(
    config: &ChaosConfig,
    build: &impl Fn(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> ChaosReport {
    let (healthy_busbw, iter_time, mut sim) = calibrate_with(config, build);

    // Same seed as calibration, fresh fabric; the spent calibration sim
    // is reset in place so the chaos pass reuses its event-queue and
    // connection-table allocations.
    let rng = SimRng::from_seed(config.seed);
    sim.reset(
        build(chaos_clos(config), chaos_net(config), &rng),
        rng.fork("transport"),
    );
    let nics = ring_nics(config, &sim);
    let plan = effective_plan(config, &sim, &nics, iter_time);
    // A shrunk plan may be empty (the shrinker probes the no-fault
    // candidate); such a run is simply the healthy workload again.
    let fault_start = plan
        .clone()
        .into_events()
        .first()
        .map(|&(t, _)| t)
        .unwrap_or(SimTime::ZERO);
    let recovered_at = plan
        .recovery_time(config.bgp_convergence)
        .unwrap_or(SimTime::ZERO);
    if !plan.is_empty() {
        sim.network_mut().install_fault_plan(plan);
    }

    let runner = AllReduceRunner::new(
        &mut sim,
        vec![AllReduceJob {
            nics,
            data_bytes: config.data_bytes,
            iterations: config.iterations,
            burst: None,
        }],
    );
    let mut app = ErrorWatch {
        runner,
        errors: Vec::new(),
        recovered: Vec::new(),
    };
    app.runner.start(&mut sim);
    sim.run(&mut app, SimTime::from_nanos(u64::MAX / 2));

    let report = app.runner.report(0);
    let busbw: Vec<f64> = (0..report.iterations.len())
        .map(|i| report.bus_bandwidth_gbs(i))
        .collect();
    let phase = |pred: &dyn Fn(&crate::allreduce::IterationRecord) -> bool| -> Option<f64> {
        let vals: Vec<f64> = report
            .iterations
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .map(|(i, _)| busbw[i])
            .collect();
        stellar_sim::stats::mean(&vals)
    };
    let before = phase(&|r| r.finished <= fault_start);
    let bridged = phase(&|r| r.started < recovered_at && r.finished > fault_start);
    let after = phase(&|r| r.started >= recovered_at);

    let drops_by_reason: Vec<(DropReason, u64)> = DropReason::ALL
        .iter()
        .map(|&r| (r, sim.network().drops_by_reason(r)))
        .collect();
    let total = sim.total_stats();
    let errors = app.errors;
    // Only *terminal* failures surface as errors; a connection that is
    // still recovering (or recovered) must not be counted dead.
    debug_assert_eq!(errors.len(), sim.failed_connections());
    debug_assert_eq!(app.recovered.len() as u64, total.recoveries);

    let verdict = if !errors.is_empty() {
        Verdict::TransportError
    } else {
        // A phase window nobody's iteration overlapped carries no
        // evidence of degradation; judge only the windows we observed.
        let bridged_ok = bridged.map(|b| b >= healthy_busbw * 0.6).unwrap_or(true);
        let after_ok = after.map(|a| a >= healthy_busbw * 0.9).unwrap_or(false);
        match (bridged_ok, after_ok) {
            (true, true) => Verdict::Graceful,
            (false, true) => Verdict::Degraded,
            _ => Verdict::Collapsed,
        }
    };

    ChaosReport {
        scenario: config.scenario,
        healthy_busbw_gbs: healthy_busbw,
        iterations_completed: report.iterations.len() as u32,
        busbw_gbs: busbw,
        before,
        bridged,
        after,
        fault_start,
        recovered_at,
        drops_by_reason,
        retransmits: total.retransmits,
        recoveries: total.recoveries,
        replayed_packets: total.replayed_packets,
        recovery_downtimes: app.recovered.iter().map(|&(_, d)| d).collect(),
        errors,
        verdict,
    }
}

/// Whether `config` reproduces a transport failure: a terminal
/// connection error, a collapsed verdict, or a job that could not finish
/// its iterations. This is the shrinker's oracle; it is a pure function
/// of the (seeded) config.
pub fn chaos_fails(config: &ChaosConfig) -> bool {
    let r = run_chaos(config);
    matches!(r.verdict, Verdict::TransportError | Verdict::Collapsed)
        || r.iterations_completed < config.iterations
}

/// A minimal reproducer derived by [`shrink_failing_chaos`].
#[derive(Debug, Clone)]
pub struct ShrunkChaos {
    /// The minimized failing configuration (replay with [`run_chaos`] or
    /// [`chaos_fails`]).
    pub config: ChaosConfig,
    /// Fault events in the scenario's full plan.
    pub full_plan_events: usize,
    /// Fault events kept by the bisection.
    pub kept_plan_events: usize,
    /// Chaos runs spent probing shrink candidates.
    pub probes: u32,
}

impl ShrunkChaos {
    /// Render the reproducer as a ready-to-paste `#[test]` function.
    ///
    /// The emitted source reconstructs the exact [`ChaosConfig`]
    /// (including the seed and the bisected `plan_keep` subset) and
    /// asserts the failure still reproduces. Flowlet path algorithms
    /// carry a payload that `Debug` does not render as valid source;
    /// every unit-variant algorithm round-trips verbatim.
    pub fn test_source(&self) -> String {
        let c = &self.config;
        let plan_keep = match &c.plan_keep {
            Some(keep) => format!("Some(vec!{keep:?})"),
            None => "None".to_string(),
        };
        let recovery = match &c.recovery {
            Some(r) => format!(
                "Some(RecoveryPolicy {{\n\
                \x20           max_attempts: {},\n\
                \x20           backoff: SimDuration::from_nanos({}),\n\
                \x20           backoff_mult: {:?},\n\
                \x20           backoff_max: SimDuration::from_nanos({}),\n\
                \x20           reestablish: SimDuration::from_nanos({}),\n\
                \x20       }})",
                r.max_attempts,
                r.backoff.as_nanos(),
                r.backoff_mult,
                r.backoff_max.as_nanos(),
                r.reestablish.as_nanos(),
            ),
            None => "None".to_string(),
        };
        let plane_failover = match &c.plane_failover {
            Some(p) => format!(
                "Some(PlaneFailover {{\n\
                \x20           planes: {},\n\
                \x20           readmit_after: SimDuration::from_nanos({}),\n\
                \x20       }})",
                p.planes,
                p.readmit_after.as_nanos(),
            ),
            None => "None".to_string(),
        };
        format!(
            "/// Minimal reproducer shrunk from a failing chaos scenario \
             ({} of {} fault events kept).\n\
             #[test]\n\
             fn shrunk_chaos_reproducer() {{\n\
            \x20   use stellar_sim::SimDuration;\n\
            \x20   use stellar_transport::{{PathAlgo, PlaneFailover, RecoveryPolicy, ScoreboardPolicy}};\n\
            \x20   use stellar_workloads::{{chaos_fails, ChaosConfig, ChaosScenario}};\n\
            \x20   let config = ChaosConfig {{\n\
            \x20       scenario: ChaosScenario::{:?},\n\
            \x20       ranks: {},\n\
            \x20       data_bytes: {},\n\
            \x20       iterations: {},\n\
            \x20       fail_after_iter: {},\n\
            \x20       algo: PathAlgo::{:?},\n\
            \x20       num_paths: {},\n\
            \x20       bgp_convergence: SimDuration::from_nanos({}),\n\
            \x20       retry_budget: {},\n\
            \x20       rto_backoff: {:?},\n\
            \x20       scoreboard: ScoreboardPolicy {{\n\
            \x20           blacklist_after: {},\n\
            \x20           penalty: SimDuration::from_nanos({}),\n\
            \x20       }},\n\
            \x20       recovery: {},\n\
            \x20       plane_failover: {},\n\
            \x20       seed: {},\n\
            \x20       plan_keep: {},\n\
            \x20   }};\n\
            \x20   assert!(chaos_fails(&config), \"shrunk reproducer must still fail\");\n\
             }}\n",
            self.kept_plan_events,
            self.full_plan_events,
            c.scenario,
            c.ranks,
            c.data_bytes,
            c.iterations,
            c.fail_after_iter,
            c.algo,
            c.num_paths,
            c.bgp_convergence.as_nanos(),
            c.retry_budget,
            c.rto_backoff,
            c.scoreboard.blacklist_after,
            c.scoreboard.penalty.as_nanos(),
            recovery,
            plane_failover,
            c.seed,
            plan_keep,
        )
    }
}

/// Shrink a failing chaos config to a minimal seed-replayable
/// reproducer: bisect the workload scalars (iterations, payload, ring
/// size, path fan-out) toward their smallest failing values, then ddmin
/// the scenario's fault plan down to the events the failure actually
/// needs. Returns `None` if `config` does not fail in the first place.
///
/// Deterministic end to end — every probe is a seeded [`run_chaos`] —
/// so the same input always shrinks to the same reproducer, and
/// [`ShrunkChaos::test_source`] prints it as a paste-ready test.
pub fn shrink_failing_chaos(config: &ChaosConfig) -> Option<ShrunkChaos> {
    use stellar_sim::shrink::{shrink_list, shrink_scalar};

    if !chaos_fails(config) {
        return None;
    }
    let mut probes: u32 = 1;
    let mut best = config.clone();

    // Workload scalars first: every later probe then replays the cheaper
    // shrunk workload. Each knob is bisected with the others held at
    // their current best value.
    let it = shrink_scalar(1, best.iterations as u64, &mut |v| {
        probes += 1;
        let mut c = best.clone();
        c.iterations = v as u32;
        chaos_fails(&c)
    });
    best.iterations = it as u32;

    // One MTU-sized chunk per rank is the smallest meaningful AllReduce.
    let data_floor = (best.ranks as u64) * 64 * 1024;
    if best.data_bytes > data_floor {
        let bytes = shrink_scalar(data_floor, best.data_bytes, &mut |v| {
            probes += 1;
            let mut c = best.clone();
            c.data_bytes = v;
            chaos_fails(&c)
        });
        best.data_bytes = bytes;
    }

    // Ring size, in segment-pairs (the topology places ranks/2 hosts per
    // segment, so only even ring sizes are constructible).
    if best.ranks > 4 {
        let half = shrink_scalar(2, (best.ranks / 2) as u64, &mut |v| {
            probes += 1;
            let mut c = best.clone();
            c.ranks = (v * 2) as usize;
            chaos_fails(&c)
        });
        best.ranks = (half * 2) as usize;
    }

    let paths = shrink_scalar(1, best.num_paths as u64, &mut |v| {
        probes += 1;
        let mut c = best.clone();
        c.num_paths = v as u32;
        chaos_fails(&c)
    });
    best.num_paths = paths as u32;

    // Fault-plan bisection: ddmin over indices into the scenario's full
    // time-sorted event list. The event *count* does not depend on the
    // calibrated iteration time (only the timestamps do), so a
    // placeholder spacing suffices to size the index list.
    let full_len = {
        let (sim, nics) = build_sim(&best);
        build_plan(&best, &sim, &nics, SimDuration::from_micros(100)).len()
    };
    let all: Vec<usize> = (0..full_len).collect();
    let kept = shrink_list(&all, &mut |keep| {
        probes += 1;
        let mut c = best.clone();
        c.plan_keep = Some(keep.to_vec());
        chaos_fails(&c)
    });
    best.plan_keep = Some(kept.clone());

    debug_assert!(chaos_fails(&best), "shrink result must still fail");
    Some(ShrunkChaos {
        config: best,
        full_plan_events: full_len,
        kept_plan_events: kept.len(),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scenario: ChaosScenario) -> ChaosConfig {
        ChaosConfig {
            scenario,
            data_bytes: 2 * 1024 * 1024,
            iterations: 8,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn flap_storm_obs_rides_through() {
        let r = run_chaos(&quick(ChaosScenario::FlapStorm));
        assert_eq!(r.iterations_completed, 8);
        assert!(r.errors.is_empty());
        assert!(r.healthy_busbw_gbs > 1.0);
        assert!(
            matches!(r.verdict, Verdict::Graceful | Verdict::Degraded),
            "verdict {:?}",
            r.verdict
        );
        // Flaps produce dead-link drops, not random loss.
        let dead = r
            .drops_by_reason
            .iter()
            .find(|(reason, _)| *reason == DropReason::LinkDown)
            .unwrap()
            .1;
        assert!(dead > 0, "a flap storm must actually drop packets");
    }

    #[test]
    fn slow_optics_drops_are_classified_degraded() {
        let r = run_chaos(&quick(ChaosScenario::SlowOptics));
        assert_eq!(r.iterations_completed, 8);
        let degraded = r
            .drops_by_reason
            .iter()
            .find(|(reason, _)| *reason == DropReason::DegradedLink)
            .unwrap()
            .1;
        assert!(degraded > 0, "the ramp must cause DegradedLink drops");
        // A dim optic is random per-packet loss: the scoreboard can't
        // cleanly blacklist it (losses per path are rarely consecutive),
        // so the only hard guarantees are completion without a transport
        // error and correct drop classification. The verdict records how
        // hard the ring was hit; it must never be a transport error.
        assert!(r.errors.is_empty());
        assert_ne!(r.verdict, Verdict::TransportError);
    }

    #[test]
    fn switch_death_reroutes() {
        let r = run_chaos(&quick(ChaosScenario::SwitchDeath));
        assert_eq!(r.iterations_completed, 8);
        assert!(r.errors.is_empty());
        assert!(r.after.is_some(), "post-reroute window must be observed");
        assert!(
            matches!(r.verdict, Verdict::Graceful | Verdict::Degraded),
            "verdict {:?}",
            r.verdict
        );
    }

    #[test]
    fn compound_hardened_obs_is_graceful() {
        // The acceptance scenario: flap storm + switch death against the
        // full hardened transport (OBS + backoff + scoreboard). Payload
        // sized so an iteration dwarfs one RTO — the ≥60% bridging claim
        // is about riding over faults, not about hiding a 250 µs stall
        // inside a 220 µs iteration.
        let r = run_chaos(&ChaosConfig {
            data_bytes: 16 * 1024 * 1024,
            iterations: 8,
            ..ChaosConfig::default()
        });
        assert_eq!(r.iterations_completed, 8);
        assert!(r.errors.is_empty(), "hardened OBS must not die: {:?}", r.errors);
        let bridged = r.bridged.expect("bridged window populated");
        let after = r.after.expect("post-reroute window populated");
        assert!(
            bridged >= r.healthy_busbw_gbs * 0.6,
            "bridged {} vs healthy {}",
            bridged,
            r.healthy_busbw_gbs
        );
        assert!(
            after >= r.healthy_busbw_gbs * 0.9,
            "after {} vs healthy {}",
            after,
            r.healthy_busbw_gbs
        );
        assert_eq!(r.verdict, Verdict::Graceful);
    }

    #[test]
    fn compound_unhardened_single_path_errors_or_collapses() {
        // The counterfactual: SinglePath, no backoff, tiny retry budget,
        // scoreboard off, and BGP too slow to save it.
        let r = run_chaos(&ChaosConfig {
            algo: PathAlgo::SinglePath,
            num_paths: 1,
            rto_backoff: 1.0,
            retry_budget: 8,
            scoreboard: ScoreboardPolicy {
                blacklist_after: 0,
                penalty: SimDuration::ZERO,
            },
            bgp_convergence: SimDuration::from_millis(50),
            ..quick(ChaosScenario::Compound)
        });
        let errored = !r.errors.is_empty();
        let collapsed = matches!(r.verdict, Verdict::Collapsed | Verdict::TransportError);
        assert!(
            errored || collapsed,
            "unhardened single-path must fail: verdict {:?}, errors {:?}",
            r.verdict,
            r.errors
        );
        if errored {
            assert_eq!(r.verdict, Verdict::TransportError);
            assert!(matches!(
                r.errors[0].1,
                FatalError::RetryBudgetExhausted { .. }
            ));
            assert!(
                r.iterations_completed < 8,
                "a dead ring edge cannot finish the job"
            );
        }
    }

    #[test]
    fn compound_unhardened_single_path_recovers_with_policy() {
        // The acceptance scenario for DESIGN.md §11: the exact config
        // that drives single-path into terminal RetryBudgetExhausted
        // (see compound_unhardened_single_path_errors_or_collapses),
        // except a RecoveryPolicy is installed. The connection still
        // exhausts its budget — but now it tears down, backs off, and
        // replays, so the job completes end-to-end with zero terminal
        // errors and the exactly-once invariant holding throughout.
        let r = stellar_check::strict(|| {
            run_chaos(&ChaosConfig {
                algo: PathAlgo::SinglePath,
                num_paths: 1,
                rto_backoff: 1.0,
                retry_budget: 8,
                scoreboard: ScoreboardPolicy {
                    blacklist_after: 0,
                    penalty: SimDuration::ZERO,
                },
                bgp_convergence: SimDuration::from_millis(50),
                recovery: Some(RecoveryPolicy::default()),
                ..quick(ChaosScenario::Compound)
            })
        });
        assert!(
            r.errors.is_empty(),
            "recovery must prevent terminal errors: {:?}",
            r.errors
        );
        assert_ne!(r.verdict, Verdict::TransportError);
        assert_eq!(
            r.iterations_completed, 8,
            "the job must complete end-to-end with recovery enabled"
        );
        assert!(r.recoveries >= 1, "the dead route must trigger recovery");
        assert_eq!(r.recovery_downtimes.len() as u64, r.recoveries);
        assert!(
            r.replayed_packets > 0,
            "recovery must replay the unacked packets"
        );
        // Every downtime includes at least the first-rung reconnect
        // delay (backoff + re-establish).
        let floor = RecoveryPolicy::default().reconnect_delay(0);
        assert!(r.recovery_downtimes.iter().all(|&d| d >= floor));
    }

    #[test]
    fn recovery_does_not_perturb_fault_free_chaos() {
        // Byte-identity of the fault-free path: a run whose plan was
        // shrunk to nothing must produce identical numbers with and
        // without a recovery policy installed.
        let empty_plan = ChaosConfig {
            plan_keep: Some(Vec::new()),
            ..quick(ChaosScenario::Compound)
        };
        let base = run_chaos(&empty_plan);
        let with_recovery = run_chaos(&ChaosConfig {
            recovery: Some(RecoveryPolicy::default()),
            plane_failover: Some(PlaneFailover::default()),
            ..empty_plan
        });
        assert_eq!(base.busbw_gbs, with_recovery.busbw_gbs);
        assert_eq!(base.retransmits, with_recovery.retransmits);
        assert_eq!(base.drops_by_reason, with_recovery.drops_by_reason);
        assert_eq!(with_recovery.recoveries, 0);
    }

    #[test]
    fn hybrid_escalation_stays_sticky_across_flap_storm() {
        use stellar_net::fixture::hybrid_fabric;
        use stellar_net::HybridConfig;

        // Chaos on the hybrid fabric: the storm must escalate the flows
        // that cross flapping uplinks to the packet model, and
        // stickiness must hold — an escalated flow keeps sending on the
        // packet side without re-escalating every packet.
        let config = quick(ChaosScenario::FlapStorm);
        let build = |clos: ClosConfig, net: NetworkConfig, rng: &SimRng| {
            hybrid_fabric(clos, net, HybridConfig::default(), rng)
        };
        let run = || {
            let (_, iter_time, _) = calibrate_with(&config, &build);
            let (mut sim, nics) = build_sim_with(&config, &build);
            let plan = effective_plan(&config, &sim, &nics, iter_time);
            sim.network_mut().install_fault_plan(plan);
            let runner = AllReduceRunner::new(
                &mut sim,
                vec![AllReduceJob {
                    nics,
                    data_bytes: config.data_bytes,
                    iterations: config.iterations,
                    burst: None,
                }],
            );
            let mut app = ErrorWatch {
                runner,
                errors: Vec::new(),
                recovered: Vec::new(),
            };
            app.runner.start(&mut sim);
            sim.run(&mut app, SimTime::from_nanos(u64::MAX / 2));
            assert!(app.runner.all_finished(), "hybrid chaos run must finish");
            assert!(app.errors.is_empty(), "errors: {:?}", app.errors);
            sim.network().send_split()
        };
        let (packet_sends, fluid_sends, escalations) = run();
        assert!(escalations > 0, "a flap storm must escalate flows");
        assert!(fluid_sends > 0, "healthy traffic must stay fluid");
        assert!(
            packet_sends > 10 * escalations,
            "sticky flows keep sending packet-side without re-escalating: \
             {packet_sends} packet sends vs {escalations} escalations"
        );
        // Seed-pinned: the identical run reproduces the split exactly.
        assert_eq!(run(), (packet_sends, fluid_sends, escalations));
    }

    #[test]
    fn chaos_is_deterministic() {
        let run = || {
            let r = run_chaos(&quick(ChaosScenario::Compound));
            (r.busbw_gbs.clone(), r.retransmits, r.drops_by_reason.clone())
        };
        let (a_bw, a_rtx, a_drops) = run();
        let (b_bw, b_rtx, b_drops) = run();
        assert_eq!(a_bw, b_bw);
        assert_eq!(a_rtx, b_rtx);
        assert_eq!(a_drops, b_drops);
    }

    /// A cheap failing config for the shrinker: the unhardened
    /// single-path counterfactual with a small payload and few
    /// iterations, so each shrink probe replays in milliseconds.
    fn failing_unhardened() -> ChaosConfig {
        ChaosConfig {
            algo: PathAlgo::SinglePath,
            num_paths: 1,
            rto_backoff: 1.0,
            retry_budget: 8,
            scoreboard: ScoreboardPolicy {
                blacklist_after: 0,
                penalty: SimDuration::ZERO,
            },
            bgp_convergence: SimDuration::from_millis(50),
            data_bytes: 256 * 1024,
            iterations: 4,
            ..quick(ChaosScenario::Compound)
        }
    }

    #[test]
    fn shrinker_minimizes_a_failing_compound_plan() {
        let config = failing_unhardened();
        assert!(chaos_fails(&config), "shrinker input must fail");

        let shrunk = shrink_failing_chaos(&config).expect("failing config must shrink");
        // Replaying the minimized config reproduces the failure.
        assert!(chaos_fails(&shrunk.config), "shrunk config must still fail");
        // The Compound plan schedules 17 events; the single-path failure
        // needs only a strict subset of them (the switch death alone
        // suffices, the flap storm is dead weight).
        assert!(
            shrunk.kept_plan_events < shrunk.full_plan_events,
            "ddmin must drop dead-weight fault events: kept {} of {}",
            shrunk.kept_plan_events,
            shrunk.full_plan_events
        );
        assert!(shrunk.config.iterations <= config.iterations);
        assert!(shrunk.probes > 0);

        // And the rendered reproducer is paste-ready source.
        let src = shrunk.test_source();
        assert!(src.contains("#[test]"), "missing test attribute:\n{src}");
        assert!(src.contains("seed: "), "missing seed:\n{src}");
        assert!(
            src.contains("plan_keep: Some(vec!["),
            "missing bisected plan subset:\n{src}"
        );
        assert!(src.contains("chaos_fails(&config)"), "missing oracle:\n{src}");
    }

    #[test]
    fn shrinker_declines_a_healthy_config() {
        // The hardened default rides through FlapStorm; nothing to shrink.
        assert!(shrink_failing_chaos(&quick(ChaosScenario::FlapStorm)).is_none());
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink_failing_chaos(&failing_unhardened()).unwrap();
        let b = shrink_failing_chaos(&failing_unhardened()).unwrap();
        assert_eq!(a.config.plan_keep, b.config.plan_keep);
        assert_eq!(a.probes, b.probes);
        assert_eq!(
            (a.config.iterations, a.config.data_bytes, a.config.ranks),
            (b.config.iterations, b.config.data_bytes, b.config.ranks)
        );
    }
}
