//! Failure-recovery timeline: what happens to a training job when a link
//! dies mid-run (§7.2's two-stage recovery story).
//!
//! "For complete link or optical module failures, Stellar uses a short
//! RTO to retransmit lost packets on a different path for instant
//! recovery. Over the long term, the control plane (e.g., BGP) detects
//! the failure and reroutes traffic, and Stellar's CC algorithm then
//! quickly converges to a new flow-path assignment."
//!
//! [`run_failure_timeline`] runs a continuous AllReduce, kills one
//! aggregation link mid-run, and reports per-iteration bus bandwidth so
//! the three phases are visible: healthy → RTO-bridged → rerouted.

use stellar_net::fixture::packet_fabric;
use stellar_net::{ClosConfig, Fabric, LinkId, NetworkConfig, NicId};
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::{App, ConnId, MsgId, PathAlgo, TransportConfig, TransportSim};

use crate::allreduce::{AllReduceJob, AllReduceRunner};

/// Failure-timeline parameters.
#[derive(Debug, Clone)]
pub struct FailureTimelineConfig {
    /// Ring size.
    pub ranks: usize,
    /// AllReduce payload per rank.
    pub data_bytes: u64,
    /// Iterations to run in total.
    pub iterations: u32,
    /// Iteration index after which the link dies.
    pub fail_after_iter: u32,
    /// Path algorithm.
    pub algo: PathAlgo,
    /// Paths per connection.
    pub num_paths: u32,
    /// BGP convergence delay.
    pub bgp_convergence: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for FailureTimelineConfig {
    fn default() -> Self {
        FailureTimelineConfig {
            ranks: 8,
            data_bytes: 32 * 1024 * 1024,
            iterations: 9,
            fail_after_iter: 3,
            algo: PathAlgo::Obs,
            num_paths: 128,
            bgp_convergence: SimDuration::from_millis(2),
            seed: 5,
        }
    }
}

/// Timeline output.
#[derive(Debug, Clone)]
pub struct FailureTimeline {
    /// Per-iteration bus bandwidth, GB/s, in order.
    pub busbw_gbs: Vec<f64>,
    /// When the link was killed.
    pub failed_at: SimTime,
    /// Retransmissions observed (RTO recoveries).
    pub retransmits: u64,
    /// Mean busbw before the failure, or `None` if no iteration finished
    /// before it (an empty window is not a zero-bandwidth window).
    pub before: Option<f64>,
    /// Mean busbw in the RTO-bridged window (failure → convergence), or
    /// `None` if no iteration overlapped it.
    pub during: Option<f64>,
    /// Mean busbw after BGP convergence, or `None` if the job ended
    /// before any post-convergence iteration started.
    pub after: Option<f64>,
}

/// The driving app: wraps [`AllReduceRunner`] and kills the link exactly
/// when the configured iteration completes (inside the simulation, not
/// between runs).
struct TimelineApp {
    runner: AllReduceRunner,
    fail_link: LinkId,
    fail_after_iter: u32,
    failed_at: Option<SimTime>,
}

impl<F: Fabric> App<F> for TimelineApp {
    fn on_message_complete(&mut self, sim: &mut TransportSim<F>, conn: ConnId, msg: MsgId) {
        self.runner.on_message_complete(sim, conn, msg);
        // Kill the link the moment the configured iteration completes.
        if self.failed_at.is_none()
            && self.runner.report(0).iterations.len() as u32 >= self.fail_after_iter
        {
            let now = sim.now();
            sim.network_mut().set_link_state_at(now, self.fail_link, false);
            self.failed_at = Some(now);
        }
    }
    fn on_timer(&mut self, sim: &mut TransportSim<F>, token: u64) {
        self.runner.on_timer(sim, token);
    }
}

/// Run the timeline on the packet-level fabric.
pub fn run_failure_timeline(config: &FailureTimelineConfig) -> FailureTimeline {
    run_failure_timeline_with(config, packet_fabric)
}

/// Run the timeline on any [`Fabric`] (builder contract as in
/// [`crate::run_permutation_with`]).
pub fn run_failure_timeline_with<F: Fabric>(
    config: &FailureTimelineConfig,
    build: impl FnOnce(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> FailureTimeline {
    let rng = SimRng::from_seed(config.seed);
    let network = build(
        ClosConfig {
            segments: 2,
            hosts_per_segment: config.ranks / 2,
            rails: 1,
            planes: 2,
            aggs_per_plane: 60,
        },
        NetworkConfig {
            bgp_convergence: config.bgp_convergence,
            ..NetworkConfig::default()
        },
        &rng,
    );
    let mut sim = TransportSim::new(
        network,
        TransportConfig {
            algo: config.algo,
            num_paths: config.num_paths,
            ..TransportConfig::default()
        },
        rng.fork("transport"),
    );
    let nics: Vec<NicId> = (0..config.ranks)
        .map(|r| {
            let host = (r / 2) + (r % 2) * (config.ranks / 2);
            sim.network().topology().nic(host, 0)
        })
        .collect();
    let fail_link = sim.network().topology().route(nics[0], nics[1], 0, 0)[1];

    let mut runner = AllReduceRunner::new(
        &mut sim,
        vec![AllReduceJob {
            nics,
            data_bytes: config.data_bytes,
            iterations: config.iterations,
            burst: None,
        }],
    );
    runner.start(&mut sim);

    let mut app = TimelineApp {
        runner,
        fail_link,
        fail_after_iter: config.fail_after_iter,
        failed_at: None,
    };
    sim.run(&mut app, SimTime::from_nanos(u64::MAX / 2));
    assert!(app.runner.all_finished(), "timeline job must finish");
    // A finished job proves every connection came to rest: none dead
    // terminally and none stuck mid-recovery — the two states
    // `failed_connections` / `recovering_count` distinguish.
    debug_assert_eq!(sim.failed_connections(), 0);
    debug_assert_eq!(sim.recovering_count(), 0);
    let fail_at = app.failed_at.expect("failure was injected");

    let report = app.runner.report(0);
    let busbw: Vec<f64> = (0..report.iterations.len())
        .map(|i| report.bus_bandwidth_gbs(i))
        .collect();
    let converged_at = fail_at + config.bgp_convergence;
    let phase = |pred: &dyn Fn(&crate::allreduce::IterationRecord) -> bool| -> Option<f64> {
        let vals: Vec<f64> = report
            .iterations
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .map(|(i, _)| busbw[i])
            .collect();
        stellar_sim::stats::mean(&vals)
    };
    let retransmits = sim.total_stats().retransmits;

    FailureTimeline {
        before: phase(&|r| r.finished <= fail_at),
        during: phase(&|r| r.started < converged_at && r.finished > fail_at),
        after: phase(&|r| r.started >= converged_at),
        busbw_gbs: busbw,
        failed_at: fail_at,
        retransmits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spray_timeline_recovers_fully() {
        let t = run_failure_timeline(&FailureTimelineConfig::default());
        assert_eq!(t.busbw_gbs.len(), 9);
        // All three phase windows must be populated — an empty window
        // would previously masquerade as a 0.0 collapse.
        let before = t.before.expect("pre-failure window populated");
        let during = t.during.expect("bridged window populated");
        let after = t.after.expect("post-convergence window populated");
        assert!(before > 0.0 && after > 0.0);
        // Instant recovery: even the RTO-bridged window keeps most of the
        // bandwidth (loss fan-out 1/120), and the rerouted phase returns
        // to within 10% of healthy.
        assert!(during > before * 0.6, "during {during} vs before {before}");
        assert!(after > before * 0.9, "after {after} vs before {before}");
    }

    #[test]
    fn single_path_timeline_needs_the_reroute() {
        let t = run_failure_timeline(&FailureTimelineConfig {
            algo: PathAlgo::SinglePath,
            num_paths: 1,
            seed: 6,
            ..FailureTimelineConfig::default()
        });
        let before = t.before.expect("pre-failure window populated");
        let during = t.during.expect("bridged window populated");
        let after = t.after.expect("post-convergence window populated");
        // The ring edge pinned to the dead link collapses until BGP
        // converges, then recovers.
        assert!(during < before * 0.8, "during {during} vs before {before}");
        assert!(after > during, "after {after} vs during {during}");
        assert!(t.retransmits > 0);
    }

    #[test]
    fn deterministic() {
        let a = run_failure_timeline(&FailureTimelineConfig::default());
        let b = run_failure_timeline(&FailureTimelineConfig::default());
        assert_eq!(a.busbw_gbs, b.busbw_gbs);
        assert_eq!(a.retransmits, b.retransmits);
    }
}
