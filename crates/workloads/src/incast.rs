//! Incast: N synchronized senders converge on one receiver.
//!
//! The paper's §7.2 notes that transports like MP-RDMA, SMaRTT-REPS and
//! STrack "typically optimize for tail latency under challenging traffic
//! patterns (e.g., skewed distributions, heavy incasts)" — patterns LLM
//! training does *not* exhibit, which is why Stellar favours a simple
//! high-fanout spray. This module provides the incast pattern anyway, so
//! the trade-off is measurable: under incast the bottleneck is the
//! receiver's downlink, and no path-selection algorithm can help; the CC
//! must absorb it.

use stellar_net::fixture::packet_fabric;
use stellar_net::{ClosConfig, Fabric, NetworkConfig};
use stellar_sim::{SimRng, SimTime};
use stellar_transport::{ConnId, NoopApp, TransportConfig, TransportSim};

/// Incast experiment parameters.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Fabric shape.
    pub topology: ClosConfig,
    /// Link model.
    pub network: NetworkConfig,
    /// Transport under test.
    pub transport: TransportConfig,
    /// Number of synchronized senders.
    pub senders: usize,
    /// Bytes each sender transfers.
    pub bytes_per_sender: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            topology: ClosConfig {
                segments: 2,
                hosts_per_segment: 9,
                rails: 1,
                planes: 2,
                aggs_per_plane: 8,
            },
            network: NetworkConfig::default(),
            transport: TransportConfig::default(),
            senders: 8,
            bytes_per_sender: 4 * 1024 * 1024,
            seed: 1,
        }
    }
}

/// Incast results.
#[derive(Debug, Clone)]
pub struct IncastReport {
    /// Completion time of the fastest sender.
    pub first_done: SimTime,
    /// Completion time of the slowest sender (the incast's tail).
    pub last_done: SimTime,
    /// Aggregate goodput at the receiver, Gbps.
    pub goodput_gbps: f64,
    /// Jain's fairness index over per-sender completion times.
    pub fairness: f64,
    /// Median per-sender completion latency, ns.
    pub p50_latency_ns: u64,
    /// Worst per-sender completion latency, ns (the incast tail).
    pub p99_latency_ns: u64,
    /// Total ECN-marked ACKs (congestion signal volume).
    pub ecn_acks: u64,
    /// Packets dropped in the fabric.
    pub drops: u64,
}

/// Run an incast on the packet-level fabric: `senders` hosts, all in
/// the segment opposite the receiver, start transferring at t = 0.
pub fn run_incast(config: &IncastConfig) -> IncastReport {
    run_incast_with(config, packet_fabric)
}

/// Run an incast on any [`Fabric`] (builder contract as in
/// [`crate::run_permutation_with`]).
pub fn run_incast_with<F: Fabric>(
    config: &IncastConfig,
    build: impl FnOnce(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> IncastReport {
    let rng = SimRng::from_seed(config.seed);
    let network = build(config.topology.clone(), config.network.clone(), &rng);
    let half = network.topology().total_hosts() / 2;
    assert!(
        config.senders <= half,
        "senders must fit in the far segment"
    );
    let mut sim = TransportSim::new(network, config.transport.clone(), rng.fork("transport"));

    let receiver = sim.network().topology().nic(0, 0);
    let mut conns: Vec<ConnId> = Vec::new();
    for s in 0..config.senders {
        let src = sim.network().topology().nic(half + s, 0);
        conns.push(sim.add_connection(src, receiver));
    }
    let msgs: Vec<_> = conns
        .iter()
        .map(|&c| (c, sim.post_message(c, config.bytes_per_sender)))
        .collect();
    sim.run(&mut NoopApp, SimTime::from_nanos(u64::MAX / 2));
    // No connection may end the run dead or mid-recovery.
    debug_assert_eq!(sim.failed_connections() + sim.recovering_count(), 0);

    let done: Vec<SimTime> = msgs
        .iter()
        .map(|&(c, m)| sim.message_completed_at(c, m).expect("incast completes"))
        .collect();
    let first = *done.iter().min().expect("senders > 0");
    let last = *done.iter().max().expect("senders > 0");
    let total = config.senders as u64 * config.bytes_per_sender;
    let ecn: u64 = conns.iter().map(|&c| sim.conn_stats(c).ecn_acks).sum();
    let retx: u64 = conns.iter().map(|&c| sim.conn_stats(c).retransmits).sum();

    // Jain's index over completion times (1.0 = perfectly fair).
    let times: Vec<f64> = done.iter().map(|t| t.as_nanos() as f64).collect();
    let sum: f64 = times.iter().sum();
    let sum_sq: f64 = times.iter().map(|t| t * t).sum();
    let fairness = sum * sum / (times.len() as f64 * sum_sq);

    let mut lat = stellar_sim::stats::Histogram::new();
    for &(c, _) in &msgs {
        let p = sim.message_latency_histogram(c).percentiles();
        if let Some(v) = p.max() {
            lat.record(v);
        }
    }
    let lat = lat.percentiles();

    IncastReport {
        first_done: first,
        last_done: last,
        goodput_gbps: stellar_sim::stats::gbps(total, last.duration_since(SimTime::ZERO)),
        fairness,
        p50_latency_ns: lat.p50().unwrap_or(0),
        p99_latency_ns: lat.p99().unwrap_or(0),
        ecn_acks: ecn,
        drops: retx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_transport::PathAlgo;

    #[test]
    fn incast_is_receiver_bound() {
        let r = run_incast(&IncastConfig::default());
        // 8 senders into one dual-plane NIC: the receiver's 2×200 Gbps
        // downlinks bound the aggregate.
        assert!(r.goodput_gbps < 410.0, "goodput={}", r.goodput_gbps);
        assert!(r.goodput_gbps > 150.0, "goodput={}", r.goodput_gbps);
        assert!(r.ecn_acks > 0, "incast must trigger ECN");
    }

    #[test]
    fn incast_is_fair_across_senders() {
        let r = run_incast(&IncastConfig::default());
        assert!(r.fairness > 0.95, "fairness={}", r.fairness);
        assert!(r.p99_latency_ns >= r.p50_latency_ns);
        assert!(r.p50_latency_ns > 0);
    }

    #[test]
    fn spraying_cannot_fix_incast() {
        // §7.2's point inverted: under incast the bottleneck is the
        // receiver, so path diversity buys little.
        let run = |algo, paths| {
            run_incast(&IncastConfig {
                transport: TransportConfig {
                    algo,
                    num_paths: paths,
                    ..TransportConfig::default()
                },
                ..IncastConfig::default()
            })
            .goodput_gbps
        };
        let single = run(PathAlgo::SinglePath, 1);
        let spray = run(PathAlgo::Obs, 128);
        let gain = spray / single;
        assert!(
            (0.7..1.6).contains(&gain),
            "incast gain should be modest: {gain}"
        );
    }

    #[test]
    fn more_senders_stretch_the_tail() {
        let run = |n| {
            run_incast(&IncastConfig {
                senders: n,
                ..IncastConfig::default()
            })
            .last_done
        };
        assert!(run(8) > run(2));
    }
}
