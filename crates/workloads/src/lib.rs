//! # stellar-workloads — AI traffic and training-job models
//!
//! The workloads the paper evaluates Stellar under:
//!
//! * [`permutation`] — the Fig. 9 permutation stress: every RNIC streams
//!   to one random distinct RNIC, saturating ToR uplinks and exposing
//!   ECMP hash imbalance.
//! * [`allreduce`] — ring AllReduce as a causally-chained transport
//!   [`stellar_transport::App`]: multiple concurrent jobs, optional
//!   bursty (on/off) scheduling, and bus-bandwidth accounting (Figs. 10
//!   and 11).
//! * [`failures`] — the §7.2 failure-recovery timeline: healthy →
//!   RTO-bridged → BGP-rerouted bandwidth phases around a link death.
//! * [`chaos`] — multi-fault scenarios (flap storms, cascading switch
//!   death, slow-degrading optics) driven by seeded
//!   [`stellar_net::FaultPlan`]s, with a graceful-degradation verdict.
//! * [`incast`] — N-to-1 synchronized incast, the "challenging pattern"
//!   §7.2 contrasts against LLM traffic.
//! * [`llm`] — the LLM 3D-parallelism step model: per-step TP/DP/PP/EP
//!   communication volumes and compute time for Megatron- and
//!   DeepSpeed-style jobs (Table 1), plus end-to-end step-time
//!   simulation over the fabric with reranked or random placement
//!   (Figs. 15 and 16).

#![warn(missing_docs)]

pub mod allreduce;
pub mod chaos;
pub mod failures;
pub mod incast;
pub mod llm;
pub mod permutation;

pub use allreduce::{AllReduceJob, AllReduceReport, AllReduceRunner, BurstSchedule};
pub use chaos::{
    chaos_fails, run_chaos, shrink_failing_chaos, ChaosConfig, ChaosReport, ChaosScenario,
    ShrunkChaos, Verdict,
};
pub use failures::{
    run_failure_timeline, run_failure_timeline_with, FailureTimeline, FailureTimelineConfig,
};
pub use incast::{run_incast, run_incast_with, IncastConfig, IncastReport};
pub use llm::{
    comm_ratios, simulate_scale_training_step, simulate_training_step,
    simulate_training_step_with, CommRatios, LlmJobConfig, Placement, ScaleTrainingConfig,
    TrainingOutcome, TrainingSimConfig,
};
pub use permutation::{
    run_permutation, run_permutation_with, PermutationConfig, PermutationReport,
};
