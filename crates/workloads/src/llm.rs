//! The LLM 3D-parallelism model: Table 1's communication ratios and the
//! Fig. 15/16 end-to-end training simulations.
//!
//! ## Analytic step model (Table 1)
//!
//! Per training step of a Megatron/DeepSpeed-style job:
//!
//! * compute: `6·P·tokens / gpus` FLOPs per GPU;
//! * TP: activation all-reduces per layer per microbatch (NVLink-class
//!   bandwidth);
//! * PP: stage-boundary activation transfers plus the pipeline-bubble
//!   time `((pp−1)/ga)·t_compute`;
//! * DP: gradient all-reduce (Megatron), gradient all-reduce overlapped
//!   with backward (ZeRO-1), or hierarchical parameter all-gathers
//!   (ZeRO-3), with ring efficiency degrading as the DP group spans more
//!   of the fabric.
//!
//! The constants are calibrated against the paper's measured ratios (the
//! evaluation servers are production A800-class machines we cannot
//! access); EXPERIMENTS.md records measured-vs-paper for every row.
//!
//! ## Fabric-coupled step simulation (Figs. 15/16)
//!
//! The DP ring all-reduce — the component whose time depends on the
//! *network* — is simulated packet-by-packet on the Clos fabric with the
//! chosen placement (reranked = ring neighbours co-located per segment;
//! random = shuffled across segments) and transport (single-path CX7
//! baseline vs Stellar's 128-path spray). Step time combines the analytic
//! compute term with the measured, partially-overlapped communication.

use stellar_net::fixture::packet_fabric;
use stellar_net::{ClosConfig, Fabric, NetworkConfig, NicId};
use stellar_sim::{SimDuration, SimRng, SimTime};
use stellar_transport::{PathAlgo, TransportConfig, TransportSim};

use crate::allreduce::{AllReduceJob, AllReduceRunner};

/// Training framework flavour (changes the DP communication pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Megatron-LM 3D parallelism: one gradient all-reduce per step.
    Megatron,
    /// DeepSpeed ZeRO-1: optimizer-state sharding; gradient all-reduce
    /// overlapped with backward.
    DeepSpeedZero1,
    /// DeepSpeed ZeRO-3: parameter sharding; hierarchical all-gathers.
    DeepSpeedZero3,
}

/// One training job (a Table 1 row).
#[derive(Debug, Clone)]
pub struct LlmJobConfig {
    /// Display name.
    pub name: &'static str,
    /// Framework.
    pub framework: Framework,
    /// Parameter count.
    pub params: f64,
    /// Hidden dimension.
    pub hidden: u64,
    /// Transformer layers.
    pub layers: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Tensor parallelism.
    pub tp: u64,
    /// Pipeline parallelism.
    pub pp: u64,
    /// Data parallelism.
    pub dp: u64,
    /// Expert parallelism (1 = dense).
    pub ep: u64,
    /// Micro-batch size.
    pub micro_batch: u64,
    /// Gradient-accumulation steps.
    pub grad_accum: u64,
    /// Global batch (sequences).
    pub global_batch: u64,
}

impl LlmJobConfig {
    /// Total GPUs.
    pub fn gpus(&self) -> u64 {
        self.tp * self.pp * self.dp * self.ep
    }

    /// The four Table 1 rows.
    pub fn table1() -> Vec<LlmJobConfig> {
        vec![
            LlmJobConfig {
                name: "Megatron Llama-33B",
                framework: Framework::Megatron,
                params: 33e9,
                hidden: 6656,
                layers: 60,
                seq_len: 2048,
                tp: 2,
                pp: 3,
                dp: 148,
                ep: 1,
                micro_batch: 1,
                grad_accum: 58,
                global_batch: 8584,
            },
            LlmJobConfig {
                name: "Megatron GPT-200B",
                framework: Framework::Megatron,
                params: 200e9,
                hidden: 12288,
                layers: 96,
                seq_len: 2048,
                tp: 4,
                pp: 12,
                dp: 34,
                ep: 1,
                micro_batch: 1,
                grad_accum: 117,
                global_batch: 3978,
            },
            LlmJobConfig {
                name: "DeepSpeed-Zero1 Llama-2B",
                framework: Framework::DeepSpeedZero1,
                params: 2e9,
                hidden: 2560,
                layers: 32,
                seq_len: 2048,
                tp: 1,
                pp: 1,
                dp: 16,
                ep: 1,
                micro_batch: 1,
                grad_accum: 2,
                global_batch: 32,
            },
            LlmJobConfig {
                name: "DeepSpeed-Zero3 Llama-13B",
                framework: Framework::DeepSpeedZero3,
                params: 13e9,
                hidden: 5120,
                layers: 40,
                seq_len: 2048,
                tp: 1,
                pp: 1,
                dp: 440,
                ep: 1,
                micro_batch: 1,
                grad_accum: 1,
                global_batch: 440,
            },
        ]
    }
}

/// Calibrated platform constants (see module docs).
mod platform {
    /// Effective per-GPU compute, FLOPs/s.
    pub const GPU_FLOPS: f64 = 208e12;
    /// NVLink-class effective bandwidth (TP collectives), B/s.
    pub const BW_TP: f64 = 53e9;
    /// Pipeline p2p effective bandwidth, B/s.
    pub const BW_PP: f64 = 4.5e9;
    /// Base DP ring bandwidth at small group sizes, B/s.
    pub const BW_DP_BASE: f64 = 15.6e9;
    /// Ring-efficiency exponent: bw ∝ (32/dp)^α beyond 32 replicas.
    pub const DP_SCALE_ALPHA: f64 = 1.355;
    /// Hierarchical (intra-node) all-gather bandwidth for ZeRO-3, B/s.
    pub const BW_ZERO3: f64 = 150e9;
    /// Exposed (non-overlapped) fraction of DP communication.
    pub const EXPOSE_MEGATRON: f64 = 0.5;
    pub const EXPOSE_ZERO1: f64 = 0.1;
    pub const EXPOSE_ZERO3: f64 = 0.2;
}

/// Table 1 output: per-step times and exposed communication ratios.
#[derive(Debug, Clone)]
pub struct CommRatios {
    /// Job name.
    pub name: &'static str,
    /// Compute time per step, seconds.
    pub compute_s: f64,
    /// Exposed TP communication ratio (`None` when tp == 1).
    pub tp_ratio: Option<f64>,
    /// Exposed DP communication ratio.
    pub dp_ratio: f64,
    /// Exposed PP ratio incl. pipeline bubble (`None` when pp == 1).
    pub pp_ratio: Option<f64>,
}

/// Compute the Table 1 communication ratios for `job`.
pub fn comm_ratios(job: &LlmJobConfig) -> CommRatios {
    use platform::*;
    let tokens = (job.global_batch * job.seq_len) as f64;
    let t_comp = 6.0 * job.params * tokens / job.gpus() as f64 / GPU_FLOPS;

    // TP: 4 all-reduces (attn + MLP, fwd + bwd) of b×s×h half-precision
    // activations per local layer per microbatch; ring factor (tp-1)/tp.
    let act = (job.micro_batch * job.seq_len * job.hidden * 2) as f64;
    let t_tp = if job.tp > 1 {
        let local_layers = (job.layers / job.pp).max(1) as f64;
        let v = job.grad_accum as f64
            * local_layers
            * 4.0
            * act
            * (job.tp - 1) as f64
            / job.tp as f64;
        v / BW_TP
    } else {
        0.0
    };

    // PP: one activation fwd + one gradient bwd per microbatch per stage
    // boundary, plus the pipeline bubble.
    let t_pp = if job.pp > 1 {
        let v = job.grad_accum as f64 * 2.0 * act;
        let bubble = (job.pp - 1) as f64 / job.grad_accum as f64 * t_comp;
        v / BW_PP + bubble
    } else {
        0.0
    };

    // DP: framework-specific volume and overlap exposure.
    let shard_params = job.params / (job.tp * job.pp) as f64;
    let ring = |n: f64| -> f64 { 2.0 * (n - 1.0) / n };
    let dp = job.dp as f64;
    let dp_bw = if dp > 32.0 {
        BW_DP_BASE * (32.0 / dp).powf(DP_SCALE_ALPHA)
    } else {
        BW_DP_BASE
    };
    let (v_dp, bw, expose) = match job.framework {
        // Gradient all-reduce in half precision.
        Framework::Megatron => (shard_params * 2.0 * ring(dp), dp_bw, EXPOSE_MEGATRON),
        Framework::DeepSpeedZero1 => (shard_params * 2.0 * ring(dp), dp_bw, EXPOSE_ZERO1),
        // Parameter all-gathers (fwd + bwd), hierarchical.
        Framework::DeepSpeedZero3 => (job.params * 2.0 * 2.0, BW_ZERO3, EXPOSE_ZERO3),
    };
    let t_dp = v_dp / bw * expose;

    let total = t_comp + t_tp + t_pp + t_dp;
    CommRatios {
        name: job.name,
        compute_s: t_comp,
        tp_ratio: (job.tp > 1).then_some(t_tp / total),
        dp_ratio: t_dp / total,
        pp_ratio: (job.pp > 1).then_some(t_pp / total),
    }
}

/// Task placement strategy (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Reranking co-locates communicating ranks: ring neighbours sit in
    /// the same segment wherever possible.
    Reranked,
    /// Random ranking scatters ranks across segments.
    Random,
}

/// Outcome of a fabric-coupled training-step simulation.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// Analytic compute time per (scaled) step.
    pub compute: SimDuration,
    /// Measured network communication time per step (DP ring).
    pub comm_network: SimDuration,
    /// Exposed communication after compute/comm overlap.
    pub comm_exposed: SimDuration,
    /// Step time = compute + exposed communication.
    pub step: SimDuration,
}

impl TrainingOutcome {
    /// Relative training speed (inverse step time), arbitrary units.
    pub fn speed(&self) -> f64 {
        1e9 / self.step.as_nanos() as f64
    }
}

/// Parameters of the Fig. 15/16 scaled simulation.
#[derive(Debug, Clone)]
pub struct TrainingSimConfig {
    /// Ranks in each DP ring (one NIC each).
    pub ranks: usize,
    /// Concurrent DP rings (one per pipeline stage in a real job); their
    /// contention on the aggregation layer is what placement and
    /// transport choices modulate.
    pub rings: usize,
    /// All-reduce payload per rank (scaled).
    pub data_bytes: u64,
    /// Scaled compute time per step.
    pub compute: SimDuration,
    /// Fraction of communication hidden under compute.
    pub overlap: f64,
    /// Placement strategy.
    pub placement: Placement,
    /// Transport algorithm.
    pub algo: PathAlgo,
    /// Paths per connection.
    pub num_paths: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for TrainingSimConfig {
    fn default() -> Self {
        TrainingSimConfig {
            ranks: 32,
            rings: 4,
            data_bytes: 8 * 1024 * 1024,
            // Calibrated so exposed communication sits at the 10-30% of
            // step time that Table 1 reports for production jobs.
            compute: SimDuration::from_millis(6),
            overlap: 0.5,
            placement: Placement::Random,
            algo: PathAlgo::Obs,
            num_paths: 128,
            seed: 1,
        }
    }
}

/// Run one training step's DP communication on the packet-level fabric
/// and combine it with the compute model.
pub fn simulate_training_step(config: &TrainingSimConfig) -> TrainingOutcome {
    simulate_training_step_with(config, packet_fabric)
}

/// Run one training step's DP communication on any [`Fabric`] (builder
/// contract as in [`crate::run_permutation_with`]).
pub fn simulate_training_step_with<F: Fabric>(
    config: &TrainingSimConfig,
    build: impl FnOnce(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> TrainingOutcome {
    assert!(config.rings >= 1, "need at least one DP ring");
    let rng = SimRng::from_seed(config.seed);
    let total_hosts = config.ranks * config.rings;
    let topo_cfg = ClosConfig {
        segments: 2,
        hosts_per_segment: total_hosts.div_ceil(2),
        rails: 1,
        planes: 2,
        aggs_per_plane: 16,
    };
    let network = build(topo_cfg, NetworkConfig::default(), &rng);
    let mut sim = TransportSim::new(
        network,
        TransportConfig {
            algo: config.algo,
            num_paths: config.num_paths,
            ..TransportConfig::default()
        },
        rng.fork("transport"),
    );

    // Rank → host placement. Reranked: each ring's hosts are contiguous,
    // so nearly every ring edge stays inside a segment. Random: the
    // scheduler scattered ranks across both segments.
    let mut hosts: Vec<usize> = (0..total_hosts).collect();
    if config.placement == Placement::Random {
        rng.fork("placement").shuffle(&mut hosts);
    }
    let jobs: Vec<AllReduceJob> = (0..config.rings)
        .map(|j| {
            let nics: Vec<NicId> = hosts[j * config.ranks..(j + 1) * config.ranks]
                .iter()
                .map(|&h| sim.network().topology().nic(h, 0))
                .collect();
            AllReduceJob {
                nics,
                data_bytes: config.data_bytes,
                iterations: 1,
                burst: None,
            }
        })
        .collect();
    let mut runner = AllReduceRunner::new(&mut sim, jobs);
    runner.start(&mut sim);
    sim.run(&mut runner, SimTime::from_nanos(u64::MAX / 2));
    // No connection may end the run dead or mid-recovery.
    debug_assert_eq!(sim.failed_connections() + sim.recovering_count(), 0);
    // The step's communication phase ends when the slowest ring finishes.
    let comm = (0..config.rings)
        .map(|j| {
            let rep = runner.report(j);
            assert_eq!(rep.iterations.len(), 1, "all-reduce must complete");
            rep.iterations[0].duration()
        })
        .max()
        .expect("at least one ring");

    let hidden = comm.mul_f64(config.overlap);
    let exposed = comm - hidden.min(comm);
    TrainingOutcome {
        compute: config.compute,
        comm_network: comm,
        comm_exposed: exposed,
        step: config.compute + exposed,
    }
}

/// Parameters of the `reproduce scale` 3D-parallel job: an explicit
/// tp×pp×dp decomposition on an explicit (HPN7.0-sized) topology, one
/// rank per RNIC. The DP rings — `tp × pp` of them, `dp` ranks each —
/// run concurrently on the fabric, exactly the contention structure of a
/// real 3D-parallel step's gradient all-reduce phase.
#[derive(Debug, Clone)]
pub struct ScaleTrainingConfig {
    /// Fabric shape. Must provide at least `tp × pp × dp` RNICs.
    pub topology: ClosConfig,
    /// Tensor parallelism (intra-host in production; here it only sets
    /// the ring count).
    pub tp: usize,
    /// Pipeline parallelism.
    pub pp: usize,
    /// Data parallelism = ranks per DP ring.
    pub dp: usize,
    /// All-reduce payload per rank.
    pub data_bytes: u64,
    /// Packet payload size. Scale runs use chunk-sized packets (one
    /// packet per ring step) so the event count stays proportional to
    /// messages, not bytes.
    pub mtu: u64,
    /// Scaled compute time per step.
    pub compute: SimDuration,
    /// Fraction of communication hidden under compute.
    pub overlap: f64,
    /// Transport algorithm.
    pub algo: PathAlgo,
    /// Paths per connection.
    pub num_paths: u32,
    /// Seed.
    pub seed: u64,
}

impl ScaleTrainingConfig {
    /// Total ranks in the job.
    pub fn ranks(&self) -> usize {
        self.tp * self.pp * self.dp
    }
}

/// Run one scaled training step's DP phase on any [`Fabric`] (builder
/// contract as in [`crate::run_permutation_with`]).
///
/// Placement is reranked (each ring's ranks are contiguous RNICs on one
/// rail — collective traffic is rail-aligned, cross-rail would need
/// host-internal NVLink forwarding the fabric does not model), the
/// regime the paper's Fig. 16 recommends and the only one a 10k+-rank
/// job would deploy with. Ring `j` lives on rail `j % rails`, so the
/// rings spread evenly over the rail planes.
pub fn simulate_scale_training_step<F: Fabric>(
    config: &ScaleTrainingConfig,
    build: impl FnOnce(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> TrainingOutcome {
    let rings = config.tp * config.pp;
    assert!(rings >= 1, "need at least one DP ring");
    assert!(config.dp >= 2, "a DP ring needs at least two ranks");
    let rng = SimRng::from_seed(config.seed);
    let rails = config.topology.rails;
    let network = build(config.topology.clone(), NetworkConfig::default(), &rng);
    let total_hosts = network.topology().total_hosts();
    let hosts_needed = rings.div_ceil(rails) * config.dp;
    assert!(
        hosts_needed <= total_hosts,
        "job needs {hosts_needed} hosts ({rings} rings × {} ranks over {rails} rails), \
         topology has {total_hosts}",
        config.dp
    );
    let mut sim = TransportSim::new(
        network,
        TransportConfig {
            algo: config.algo,
            num_paths: config.num_paths,
            mtu: config.mtu,
            ..TransportConfig::default()
        },
        rng.fork("transport"),
    );

    let jobs: Vec<AllReduceJob> = (0..rings)
        .map(|j| {
            let rail = j % rails;
            let base = (j / rails) * config.dp;
            let nics: Vec<NicId> = (0..config.dp)
                .map(|k| sim.network().topology().nic(base + k, rail))
                .collect();
            AllReduceJob {
                nics,
                data_bytes: config.data_bytes,
                iterations: 1,
                burst: None,
            }
        })
        .collect();
    let mut runner = AllReduceRunner::new(&mut sim, jobs);
    runner.start(&mut sim);
    sim.run(&mut runner, SimTime::from_nanos(u64::MAX / 2));
    // No connection may end the run dead or mid-recovery.
    debug_assert_eq!(sim.failed_connections() + sim.recovering_count(), 0);
    let comm = (0..rings)
        .map(|j| {
            let rep = runner.report(j);
            assert_eq!(rep.iterations.len(), 1, "all-reduce must complete");
            rep.iterations[0].duration()
        })
        .max()
        .expect("at least one ring");

    let hidden = comm.mul_f64(config.overlap);
    let exposed = comm - hidden.min(comm);
    TrainingOutcome {
        compute: config.compute,
        comm_network: comm,
        comm_exposed: exposed,
        step: config.compute + exposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_llama33b_dp_dominates() {
        let jobs = LlmJobConfig::table1();
        let r = comm_ratios(&jobs[0]);
        // Paper: TP 4.57%, DP 20.95%, PP 2.65%.
        let tp = r.tp_ratio.unwrap();
        let pp = r.pp_ratio.unwrap();
        assert!(r.dp_ratio > tp && r.dp_ratio > pp, "{r:?}");
        assert!((0.10..0.35).contains(&r.dp_ratio), "dp={}", r.dp_ratio);
        assert!((0.02..0.09).contains(&tp), "tp={tp}");
    }

    #[test]
    fn table1_gpt200b_pp_dominates() {
        let jobs = LlmJobConfig::table1();
        let r = comm_ratios(&jobs[1]);
        // Paper: TP 10.88%, DP 1.49%, PP 20.14%.
        let tp = r.tp_ratio.unwrap();
        let pp = r.pp_ratio.unwrap();
        assert!(pp > tp && tp > r.dp_ratio, "{r:?}");
        assert!((0.08..0.30).contains(&pp), "pp={pp}");
        assert!(r.dp_ratio < 0.05, "dp={}", r.dp_ratio);
    }

    #[test]
    fn table1_deepspeed_rows_have_only_dp() {
        let jobs = LlmJobConfig::table1();
        for row in [2usize, 3] {
            let r = comm_ratios(&jobs[row]);
            assert!(r.tp_ratio.is_none());
            assert!(r.pp_ratio.is_none());
            // Paper: 17.3% (ZeRO-1) and 10.5% (ZeRO-3).
            assert!((0.05..0.30).contains(&r.dp_ratio), "{}: {}", r.name, r.dp_ratio);
        }
    }

    #[test]
    fn table1_gpu_counts() {
        let jobs = LlmJobConfig::table1();
        assert_eq!(jobs[0].gpus(), 888);
        assert_eq!(jobs[1].gpus(), 1632);
        assert_eq!(jobs[2].gpus(), 16);
        assert_eq!(jobs[3].gpus(), 440);
    }

    #[test]
    fn fig16_random_placement_magnifies_transport_gap() {
        let step = |placement, algo, paths, seed| {
            simulate_training_step(&TrainingSimConfig {
                placement,
                algo,
                num_paths: paths,
                ranks: 8,
                rings: 4,
                data_bytes: 4 * 1024 * 1024,
                seed,
                ..TrainingSimConfig::default()
            })
        };
        // The claim is statistical — any single shuffle can happen to
        // balance the fabric — so average the spray-vs-single gain over
        // several seeds for each placement.
        let seeds = [3u64, 5, 7, 9, 11];
        let mean_gain = |placement| -> f64 {
            seeds
                .iter()
                .map(|&seed| {
                    let single = step(placement, PathAlgo::SinglePath, 1, seed);
                    let spray = step(placement, PathAlgo::Obs, 128, seed);
                    spray.speed() / single.speed() - 1.0
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let gain_rer = mean_gain(Placement::Reranked);
        let gain_rnd = mean_gain(Placement::Random);
        // Fig. 16: ~0.72% reranked, up to 14% random.
        assert!(
            gain_rnd > gain_rer,
            "random gain {gain_rnd} <= reranked gain {gain_rer}"
        );
        assert!(gain_rnd > 0.0, "spray must win under random placement");
    }

    #[test]
    fn step_time_includes_compute_and_exposed_comm() {
        let out = simulate_training_step(&TrainingSimConfig {
            ranks: 8,
            seed: 4,
            ..TrainingSimConfig::default()
        });
        assert_eq!(out.step, out.compute + out.comm_exposed);
        assert!(out.comm_exposed <= out.comm_network);
        assert!(out.comm_network > SimDuration::ZERO);
    }

    #[test]
    fn deterministic() {
        let cfg = TrainingSimConfig {
            seed: 77,
            ..TrainingSimConfig::default()
        };
        let a = simulate_training_step(&cfg);
        let b = simulate_training_step(&cfg);
        assert_eq!(a.step, b.step);
    }
}
