//! Permutation traffic (Fig. 9): every RNIC sends a sustained stream to
//! one random distinct RNIC on its rail.
//!
//! "We selected 30 GPU servers from two network segments and injected
//! permutation RDMA write traffic, creating 120 flows in total." — 30
//! hosts × 4 rails = 120 flows. Each flow posts back-to-back messages for
//! the run duration; the report captures the ToR-uplink queue statistics
//! that Fig. 9 plots (average and maximum depth) plus per-flow goodput.

use stellar_net::fixture::packet_fabric;
use stellar_net::{ClosConfig, Fabric, NetworkConfig};
use stellar_sim::{SimRng, SimTime};
use stellar_transport::{App, ConnId, MsgId, TransportConfig, TransportSim};

/// Permutation experiment parameters.
#[derive(Debug, Clone)]
pub struct PermutationConfig {
    /// Fabric shape.
    pub topology: ClosConfig,
    /// Link model.
    pub network: NetworkConfig,
    /// Transport under test (algorithm, path count).
    pub transport: TransportConfig,
    /// Message size each flow posts repeatedly.
    pub message_bytes: u64,
    /// Offered load per flow in Gbps (paced injection, so every
    /// algorithm sees the same arrival pattern and queue depths are
    /// comparable — the Fig. 9 methodology).
    pub offered_gbps: f64,
    /// Wall-clock length of the run.
    pub duration: stellar_sim::SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for PermutationConfig {
    fn default() -> Self {
        PermutationConfig {
            // The paper's 30 servers across two segments, 4 RNICs each.
            topology: ClosConfig::default(),
            network: NetworkConfig::default(),
            transport: TransportConfig::default(),
            message_bytes: 1024 * 1024,
            offered_gbps: 150.0,
            duration: stellar_sim::SimDuration::from_millis(20),
            seed: 1,
        }
    }
}

/// Results of one permutation run.
#[derive(Debug, Clone)]
pub struct PermutationReport {
    /// Flows created.
    pub flows: usize,
    /// Mean of the per-ToR-uplink time-averaged queue depth, bytes.
    pub avg_queue_bytes: f64,
    /// Load-weighted mean queue depth over ToR uplinks, bytes — the queue
    /// a transmitted byte actually experienced (robust to idle-port
    /// dilution, which plain averaging suffers under single-path).
    pub weighted_queue_bytes: f64,
    /// Maximum uplink queue depth observed, bytes.
    pub max_queue_bytes: u64,
    /// Aggregate goodput over all flows, Gbps.
    pub total_goodput_gbps: f64,
    /// ToR-uplink load imbalance (Fig. 12 metric, fraction).
    pub uplink_imbalance: f64,
    /// Total RTO events (loss indicator).
    pub rto_events: u64,
}

/// Open-loop paced injector: every flow posts one message each
/// `interval`, independent of completions, so the offered load is the
/// same for every algorithm under comparison.
struct PacedInjector {
    conns: Vec<ConnId>,
    message_bytes: u64,
    interval: stellar_sim::SimDuration,
    stop_at: SimTime,
}

impl<F: Fabric> App<F> for PacedInjector {
    fn on_message_complete(&mut self, _sim: &mut TransportSim<F>, _conn: ConnId, _msg: MsgId) {}

    fn on_timer(&mut self, sim: &mut TransportSim<F>, token: u64) {
        let conn = self.conns[token as usize];
        sim.post_message(conn, self.message_bytes);
        let next = sim.now() + self.interval;
        if next < self.stop_at {
            sim.schedule_timer(next, token);
        }
    }
}

/// Run the permutation experiment on the packet-level fabric.
pub fn run_permutation(config: &PermutationConfig) -> PermutationReport {
    run_permutation_with(config, packet_fabric)
}

/// Run the permutation experiment on any [`Fabric`]. `build` receives
/// the configured topology, link model, and root RNG (fork `"net"` for
/// the fabric's stream — the fixture constructors do).
pub fn run_permutation_with<F: Fabric>(
    config: &PermutationConfig,
    build: impl FnOnce(ClosConfig, NetworkConfig, &SimRng) -> F,
) -> PermutationReport {
    let rng = SimRng::from_seed(config.seed);
    let rails = config.topology.rails;
    let network = build(config.topology.clone(), config.network.clone(), &rng);
    let hosts = network.topology().total_hosts();
    // Application-limited flows pace at their offered rate (the RNIC's
    // hardware rate limiter), so arrivals are smooth, not window bursts.
    let mut transport = config.transport.clone();
    transport.pace_gbps = Some(config.offered_gbps);
    let mut sim = TransportSim::new(network, transport, rng.fork("transport"));

    // One flow per RNIC: host h rail r -> a random host on rail r in the
    // *other* segment (random bijections per direction), so every flow
    // exercises the aggregation layer.
    assert_eq!(
        config.topology.segments, 2,
        "permutation traffic is defined over two segments"
    );
    let mut perm_rng = rng.fork("perm");
    let half = hosts / 2;
    let mut conns = Vec::new();
    for rail in 0..rails {
        let mut fwd: Vec<usize> = (0..half).collect(); // seg0 -> seg1
        let mut rev: Vec<usize> = (0..half).collect(); // seg1 -> seg0
        perm_rng.shuffle(&mut fwd);
        perm_rng.shuffle(&mut rev);
        for (h, &f) in fwd.iter().enumerate() {
            let src = sim.network().topology().nic(h, rail);
            let dst = sim.network().topology().nic(half + f, rail);
            conns.push(sim.add_connection(src, dst));
        }
        for h in 0..(hosts - half) {
            let src = sim.network().topology().nic(half + h, rail);
            let dst = sim.network().topology().nic(rev[h % half], rail);
            conns.push(sim.add_connection(src, dst));
        }
    }

    let stop_at = SimTime::ZERO + config.duration;
    let interval = stellar_sim::SimDuration::from_nanos(
        (config.message_bytes as f64 * 8.0 / config.offered_gbps) as u64,
    );
    let mut app = PacedInjector {
        conns: conns.clone(),
        message_bytes: config.message_bytes,
        interval,
        stop_at,
    };
    // Stagger flow starts across one interval so paced injections do not
    // arrive in synchronized bursts (they would in no real cluster).
    for (i, &c) in conns.iter().enumerate() {
        let offset = interval.mul(i as u64).div(conns.len() as u64);
        sim.post_message(c, config.message_bytes);
        sim.schedule_timer(SimTime::ZERO + interval + offset, i as u64);
    }
    // Let in-flight traffic complete past the injection window.
    sim.run(&mut app, stop_at + config.duration);
    // No connection may end the run dead or mid-recovery.
    debug_assert_eq!(sim.failed_connections() + sim.recovering_count(), 0);

    let now = sim.now();
    let (avg_q, max_q) = sim.network().tor_uplink_queue_stats(now);
    let (mut wsum, mut wtot) = (0.0f64, 0.0f64);
    for l in sim.network().topology().tor_uplinks() {
        let st = sim.network().link_stats(l, now);
        wsum += st.avg_queue_bytes * st.tx_bytes as f64;
        wtot += st.tx_bytes as f64;
    }
    let weighted_q = if wtot > 0.0 { wsum / wtot } else { 0.0 };
    let elapsed = now.saturating_duration_since(SimTime::ZERO);
    let total_goodput = stellar_sim::stats::gbps(sim.total_delivered_bytes(), elapsed);
    let rto_events = conns.iter().map(|&c| sim.conn_stats(c).rto_events).sum();

    PermutationReport {
        flows: conns.len(),
        avg_queue_bytes: avg_q,
        weighted_queue_bytes: weighted_q,
        max_queue_bytes: max_q,
        total_goodput_gbps: total_goodput,
        uplink_imbalance: sim.network().tor_uplink_imbalance(),
        rto_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_transport::PathAlgo;

    fn small_config(algo: PathAlgo, paths: u32) -> PermutationConfig {
        // Deliberately few aggregation switches so single-path hashing
        // collides persistently (the regime Fig. 9 demonstrates).
        PermutationConfig {
            topology: ClosConfig {
                segments: 2,
                hosts_per_segment: 6,
                rails: 2,
                planes: 2,
                aggs_per_plane: 4,
            },
            transport: TransportConfig {
                algo,
                num_paths: paths,
                ..TransportConfig::default()
            },
            message_bytes: 512 * 1024,
            duration: stellar_sim::SimDuration::from_millis(4),
            seed: 11,
            ..PermutationConfig::default()
        }
    }

    #[test]
    fn creates_one_flow_per_rnic() {
        let report = run_permutation(&small_config(PathAlgo::Obs, 32));
        assert_eq!(report.flows, 24); // 12 hosts × 2 rails
        assert!(report.total_goodput_gbps > 0.0);
    }

    #[test]
    fn fig9_shape_spray_has_shallower_queues_than_single_path() {
        let single = run_permutation(&small_config(PathAlgo::SinglePath, 1));
        let spray = run_permutation(&small_config(PathAlgo::Obs, 128));
        assert!(
            spray.max_queue_bytes < single.max_queue_bytes,
            "spray max {} vs single max {}",
            spray.max_queue_bytes,
            single.max_queue_bytes
        );
        assert!(
            spray.weighted_queue_bytes < single.weighted_queue_bytes,
            "spray weighted avg {} vs single weighted avg {}",
            spray.weighted_queue_bytes,
            single.weighted_queue_bytes
        );
    }

    #[test]
    fn fig9_shape_more_paths_reduce_queues_for_rr() {
        let narrow = run_permutation(&small_config(PathAlgo::RoundRobin, 4));
        let wide = run_permutation(&small_config(PathAlgo::RoundRobin, 128));
        assert!(
            wide.weighted_queue_bytes <= narrow.weighted_queue_bytes * 1.05,
            "wide {} vs narrow {}",
            wide.weighted_queue_bytes,
            narrow.weighted_queue_bytes
        );
        assert!(wide.uplink_imbalance <= narrow.uplink_imbalance + 1e-9);
    }

    #[test]
    fn spray_improves_goodput_under_permutation() {
        let single = run_permutation(&small_config(PathAlgo::SinglePath, 1));
        let spray = run_permutation(&small_config(PathAlgo::Obs, 128));
        assert!(
            spray.total_goodput_gbps >= single.total_goodput_gbps,
            "spray {} vs single {}",
            spray.total_goodput_gbps,
            single.total_goodput_gbps
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_permutation(&small_config(PathAlgo::Obs, 64));
        let b = run_permutation(&small_config(PathAlgo::Obs, 64));
        assert_eq!(a.max_queue_bytes, b.max_queue_bytes);
        assert_eq!(a.rto_events, b.rto_events);
        assert!((a.total_goodput_gbps - b.total_goodput_gbps).abs() < 1e-12);
    }
}
