//! Seed-pinned smoke test: one small incast run whose summary values
//! are pinned exactly. Any change to the RNG streams, the event
//! schedule, or the transport/network models shows up here as a diff
//! against the recorded numbers, not as a silent drift.
//!
//! The pins are exact (`==` on floats included): the simulation is
//! deterministic from `IncastConfig::seed`, so these are golden values,
//! not tolerances. Re-pin only for an intentional model change.

use stellar_workloads::{run_incast, IncastConfig};

#[test]
fn default_incast_summary_is_pinned_to_seed_1() {
    let r = run_incast(&IncastConfig::default());
    assert_eq!(r.goodput_gbps, 373.2915628337487);
    assert_eq!(r.fairness, 0.9964903764476493);
    assert_eq!(r.p50_latency_ns, 670_352);
    assert_eq!(r.p99_latency_ns, 719_104);
    assert_eq!(r.first_done.as_nanos(), 593_320);
    assert_eq!(r.last_done.as_nanos(), 719_104);
    assert_eq!(r.ecn_acks, 3_001);
    assert_eq!(r.drops, 0);
}

#[test]
fn incast_is_a_pure_function_of_its_seed() {
    let base = run_incast(&IncastConfig::default());
    let again = run_incast(&IncastConfig::default());
    assert_eq!(base.last_done, again.last_done);
    assert_eq!(base.ecn_acks, again.ecn_acks);

    let other = run_incast(&IncastConfig {
        seed: 2,
        ..IncastConfig::default()
    });
    assert_ne!(
        (base.p50_latency_ns, base.p99_latency_ns),
        (other.p50_latency_ns, other.p99_latency_ns),
        "a different seed must reshuffle the incast timing"
    );
}
