//! The Fig. 5 PVDMA doorbell-aliasing bug, step by step — and the
//! virtio-shm fix.
//!
//! ```sh
//! cargo run --example doorbell_aliasing
//! ```

use stellar::pcie::addr::{Gpa, Hpa, PAGE_2M, PAGE_4K};
use stellar::pcie::iommu::{Iommu, IommuConfig};
use stellar::pcie::Iova;
use stellar::virt::hypervisor::{Hypervisor, HypervisorConfig};
use stellar::virt::pvdma::{Pvdma, PvdmaConfig};
use stellar::virt::virtio::ShmRegion;
use stellar_pcie::addr::Address;

const RAM_HPA: u64 = 0x1_0000_0000;
const RNIC_DB_HPA: u64 = 0x2000_0000;

fn main() {
    println!("== The buggy layout: vDB mapped into guest RAM GPA space ==");
    let mut hypervisor = Hypervisor::new(HypervisorConfig::default());
    hypervisor.add_ram(Gpa(0), Hpa(RAM_HPA), 16 * PAGE_2M);
    let mut iommu = Iommu::new(IommuConfig::default());
    let mut pvdma = Pvdma::new(PvdmaConfig::default());

    // Step 1: the RDMA program maps the vDB (EPT entry -> RNIC doorbell).
    let vdb_gpa = Gpa(PAGE_2M + 4 * PAGE_4K);
    hypervisor.map_device_register(vdb_gpa, Hpa(RNIC_DB_HPA));
    println!("step 1: vDB mapped at {vdb_gpa} -> RNIC doorbell {:?}", Hpa(RNIC_DB_HPA));

    // Step 2: the GPU driver allocates a command queue next door.
    let cmdq_gpa = Gpa(PAGE_2M + 5 * PAGE_4K);
    println!("step 2: GPU command queue allocated at {cmdq_gpa} (same 2 MiB block)");

    // Step 3: first GPU DMA -> PVDMA pins the whole 2 MiB block,
    // copying the vDB translation into the IOMMU along the way.
    pvdma
        .dma_prepare(&hypervisor, &mut iommu, cmdq_gpa, PAGE_4K)
        .expect("pin");
    println!(
        "step 3: PVDMA pinned the block; IOMMU now translates {vdb_gpa} -> {:?}",
        iommu.translate(Iova(vdb_gpa.raw())).unwrap().hpa
    );

    // Step 4: the RDMA program exits; EPT releases the vDB, but the block
    // is still in use by the GPU, so PVDMA leaves the IOMMU alone.
    hypervisor.unmap_device_register(vdb_gpa);
    println!("step 4: RDMA program exited; EPT entry released, IOMMU entry retained");

    // Step 5: the guest reuses that GPA for a new command queue. PVDMA
    // sees the block cached and does not refresh the IOMMU.
    pvdma
        .dma_prepare(&hypervisor, &mut iommu, vdb_gpa, PAGE_4K)
        .expect("cached");
    let bad = pvdma.check_consistency(&hypervisor, &mut iommu, vdb_gpa, PAGE_4K);
    for i in &bad {
        println!(
            "step 5: STALE MAPPING — GPU DMA to {} would hit {:?} instead of {:?}",
            i.gpa,
            i.iommu_hpa,
            i.current_hpa.unwrap()
        );
    }
    assert_eq!(bad.len(), 1, "the bug must reproduce");
    println!("        -> invalid doorbell writes, unrecoverable device errors\n");

    println!("== The fix: vDB lives in the virtio shared-memory window ==");
    let mut hypervisor = Hypervisor::new(HypervisorConfig::default());
    hypervisor.add_ram(Gpa(0), Hpa(RAM_HPA), 16 * PAGE_2M);
    let mut iommu = Iommu::new(IommuConfig::default());
    let mut pvdma = Pvdma::new(PvdmaConfig::default());
    let mut shm = ShmRegion::new(16 * PAGE_4K, PAGE_4K);
    let offset = shm.map_page(Hpa(RNIC_DB_HPA)).expect("shm map");
    println!("vDB mapped at shm offset {offset:#x} — a namespace disjoint from guest RAM");

    // The same GPU allocation and pinning sequence is now harmless: no
    // guest-RAM GPA ever aliases the doorbell.
    pvdma
        .dma_prepare(&hypervisor, &mut iommu, cmdq_gpa, PAGE_4K)
        .expect("pin");
    pvdma
        .dma_prepare(&hypervisor, &mut iommu, vdb_gpa, PAGE_4K)
        .expect("cached");
    let bad = pvdma.check_consistency(&hypervisor, &mut iommu, Gpa(PAGE_2M), PAGE_2M);
    assert!(bad.is_empty());
    println!("same sequence, zero stale mappings: the aliasing bug is structurally gone");
    println!(
        "(the doorbell still resolves through shm: {:?})",
        shm.translate(offset).unwrap()
    );
}
