//! The §7.2 two-stage failure-recovery story: an aggregation link dies
//! under a running AllReduce; the 250 µs RTO bridges the gap instantly,
//! then BGP convergence reroutes and bandwidth returns to normal.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use stellar::transport::PathAlgo;
use stellar::workloads::failures::{run_failure_timeline, FailureTimelineConfig};

fn main() {
    for (name, algo, paths) in [
        ("OBS-128 (Stellar)", PathAlgo::Obs, 128),
        ("Single-path ECMP", PathAlgo::SinglePath, 1),
    ] {
        let t = run_failure_timeline(&FailureTimelineConfig {
            algo,
            num_paths: paths,
            ..FailureTimelineConfig::default()
        });
        println!("{name}: link killed at {}", t.failed_at);
        println!("  per-iteration bus bandwidth (GB/s):");
        for (i, bw) in t.busbw_gbs.iter().enumerate() {
            println!("    iter {i:>2}: {bw:>7.2}");
        }
        let phase = |v: Option<f64>| match v {
            Some(bw) => format!("{bw:.2}"),
            None => "n/a".to_string(),
        };
        println!(
            "  healthy {} -> RTO-bridged {} -> rerouted {}  ({} retransmits)\n",
            phase(t.before),
            phase(t.during),
            phase(t.after),
            t.retransmits
        );
    }
    println!("Spraying over 128 paths dilutes the dead link to 1/120 of packets, so");
    println!("the RTO bridge is nearly invisible; single-path flows pinned to the");
    println!("link collapse until the control plane reroutes them.");
}
