//! LLM training over the simulated cluster: Table 1 communication ratios
//! plus the Fig. 16 placement × transport comparison.
//!
//! ```sh
//! cargo run --release --example llm_training
//! ```

use stellar::transport::PathAlgo;
use stellar::workloads::llm::{
    comm_ratios, simulate_training_step, LlmJobConfig, Placement, TrainingSimConfig,
};

fn main() {
    println!("Table 1 — communication ratios of typical parallel jobs");
    println!(
        "{:>28} {:>8} {:>8} {:>8} {:>8}",
        "job", "GPUs", "TP", "DP", "PP"
    );
    for job in LlmJobConfig::table1() {
        let r = comm_ratios(&job);
        let fmt = |v: Option<f64>| v.map_or("N/A".into(), |x| format!("{:.2}%", x * 100.0));
        println!(
            "{:>28} {:>8} {:>8} {:>8} {:>8}",
            job.name,
            job.gpus(),
            fmt(r.tp_ratio),
            format!("{:.2}%", r.dp_ratio * 100.0),
            fmt(r.pp_ratio),
        );
    }

    println!();
    println!("Fig. 16-style comparison — step time, Stellar vs CX7 single-path");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "placement", "CX7 ms", "Stellar ms", "speedup"
    );
    for (pname, placement) in [
        ("reranked", Placement::Reranked),
        ("random", Placement::Random),
    ] {
        let step = |algo: PathAlgo, paths: u32| {
            simulate_training_step(&TrainingSimConfig {
                ranks: 24,
                data_bytes: 8 << 20,
                placement,
                algo,
                num_paths: paths,
                seed: 7,
                ..TrainingSimConfig::default()
            })
            .step
        };
        let cx7 = step(PathAlgo::SinglePath, 1);
        let stellar = step(PathAlgo::Obs, 128);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>8.2}%",
            pname,
            cx7.as_nanos() as f64 / 1e6,
            stellar.as_nanos() as f64 / 1e6,
            (cx7.as_nanos() as f64 / stellar.as_nanos() as f64 - 1.0) * 100.0
        );
    }
    println!();
    println!("Reranked placement hides the transport difference; random placement");
    println!("(many small uncoordinated jobs) is where packet spraying pays off.");
}
