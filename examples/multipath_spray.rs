//! Multipath packet spraying vs single-path ECMP under permutation
//! traffic — the Section 7 story in one run.
//!
//! ```sh
//! cargo run --release --example multipath_spray
//! ```

use stellar::net::ClosConfig;
use stellar::transport::{PathAlgo, TransportConfig};
use stellar::workloads::permutation::{run_permutation, PermutationConfig};
use stellar_sim::SimDuration;

fn config(algo: PathAlgo, paths: u32) -> PermutationConfig {
    PermutationConfig {
        topology: ClosConfig {
            segments: 2,
            hosts_per_segment: 8,
            rails: 2,
            planes: 2,
            aggs_per_plane: 8,
        },
        transport: TransportConfig {
            algo,
            num_paths: paths,
            ..TransportConfig::default()
        },
        message_bytes: 512 * 1024,
        offered_gbps: 150.0,
        duration: SimDuration::from_millis(5),
        seed: 42,
        ..PermutationConfig::default()
    }
}

fn main() {
    println!(
        "{:>12} {:>6} {:>14} {:>12} {:>14} {:>12}",
        "algorithm", "paths", "avg queue KB", "max q KB", "goodput Gbps", "imbalance %"
    );
    for (name, algo, paths) in [
        ("SinglePath", PathAlgo::SinglePath, 1),
        ("BestRTT", PathAlgo::BestRtt, 128),
        ("DWRR", PathAlgo::Dwrr, 128),
        ("MPRDMA", PathAlgo::MpRdma, 128),
        ("RR", PathAlgo::RoundRobin, 128),
        ("OBS", PathAlgo::Obs, 128),
    ] {
        let r = run_permutation(&config(algo, paths));
        println!(
            "{:>12} {:>6} {:>14.1} {:>12.1} {:>14.1} {:>12.1}",
            name,
            paths,
            r.weighted_queue_bytes / 1024.0,
            r.max_queue_bytes as f64 / 1024.0,
            r.total_goodput_gbps,
            r.uplink_imbalance * 100.0
        );
    }
    println!();
    println!("OBS with 128 paths: shallow queues, balanced uplinks, full goodput —");
    println!("the configuration Stellar deploys in production.");
}
