//! Quickstart: boot a RunD secure container, attach a vStellar device,
//! register memory on demand with PVDMA, and issue RDMA/GDR writes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stellar::core::server::{RnicId, ServerConfig, StellarServer};
use stellar::core::vstellar::VStellarStack;
use stellar::pcie::addr::Gva;
use stellar::virt::rund::MemoryStrategy;

const MB: u64 = 1024 * 1024;

fn main() {
    // A GPU server: 4 PCIe switches, one 400G RNIC + 2 GPUs each.
    let mut server = StellarServer::new(ServerConfig::default());

    // Boot a 64 GiB secure container with PVDMA (no upfront pinning).
    let (container, boot) = server.boot_container(64 * 1024 * MB, MemoryStrategy::Pvdma);
    println!(
        "container booted in {} (hypervisor {}, memory pin {})",
        boot.total, boot.hypervisor_setup, boot.memory_pin
    );

    // Create a vStellar device on RNIC 0 — seconds, not minutes.
    let stack = VStellarStack::new();
    let (device, create_time) = stack
        .create_device(&mut server, container, RnicId(0))
        .expect("device creation");
    println!("vStellar device ready in {create_time} (doorbell at {:?})", device.doorbell);

    // Register a host-memory region: PVDMA pins exactly the touched
    // 2 MiB blocks, the eMTT records per-page ownership.
    let (host_mr, reg_time) = stack
        .register_mr_host(&mut server, &device, Gva(16 * MB), 8 * MB)
        .expect("MR registration");
    println!(
        "8 MiB host MR registered in {reg_time}; {} bytes pinned total",
        server.fabric().iommu().pinned_bytes()
    );

    // And a GPU region for GDR.
    let gpu = server.gpus_under(RnicId(0))[0];
    let (gpu_mr, _) = stack
        .register_mr_gpu(&mut server, &device, Gva(1 << 30), gpu, 0, 64 * MB)
        .expect("GPU MR registration");

    // Connect a QP and write.
    let (qp, _) = stack.create_qp(&mut server, &device).expect("QP");
    let rdma = stack
        .write(&mut server, &device, qp, host_mr, Gva(16 * MB), 4 * MB)
        .expect("RDMA write");
    println!(
        "RDMA write: {} bytes in {} ({:.1} Gbps, {} pages via root complex)",
        rdma.bytes, rdma.elapsed, rdma.gbps, rdma.rc_pages
    );

    let gdr = stack
        .write(&mut server, &device, qp, gpu_mr, Gva(1 << 30), 64 * MB)
        .expect("GDR write");
    println!(
        "GDR write:  {} bytes in {} ({:.1} Gbps, {} pages peer-to-peer — eMTT bypassed the RC)",
        gdr.bytes, gdr.elapsed, gdr.gbps, gdr.p2p_pages
    );

    // Completions arrive on the device's directly-mapped CQ.
    let wcs = stack.poll_cq(&mut server, &device, 16).expect("poll CQ");
    println!(
        "polled {} work completions ({} bytes total)",
        wcs.len(),
        wcs.iter().map(|w| w.bytes).sum::<u64>()
    );
}
