//! GDR from secure containers across three virtualization generations:
//! SR-IOV VF + VFIO (incl. the switch-LUT wall), HyV/MasQ (RC-bound), and
//! vStellar (eMTT).
//!
//! ```sh
//! cargo run --example secure_container_gdr
//! ```

use stellar::core::baseline::{BaselineKind, BaselineStack};
use stellar::core::server::{RnicId, ServerConfig, StellarServer};
use stellar::core::vstellar::VStellarStack;
use stellar::pcie::addr::Gva;
use stellar::virt::rund::MemoryStrategy;

const MB: u64 = 1024 * 1024;

fn main() {
    // --- Legacy: SR-IOV VFs hit the PCIe switch LUT wall. -------------
    let mut server = StellarServer::new(ServerConfig::default());
    let (container, boot) = server.boot_container(8 * 1024 * MB, MemoryStrategy::FullPin);
    println!(
        "[VF+VFIO]   container boot: {} (all memory pinned up front)",
        boot.total
    );
    server
        .rnic_mut(RnicId(0))
        .vdevs
        .set_vf_count(63)
        .expect("static VF pool sized at host startup");
    let mut vf_stack = BaselineStack::new(BaselineKind::VfVxlan);
    let mut gdr_ok = 0;
    let mut gdr_blocked = 0;
    for _ in 0..40 {
        let dev = vf_stack
            .attach_device(&mut server, container, RnicId(0))
            .expect("attach VF");
        if dev.gdr_enabled {
            gdr_ok += 1;
        } else {
            gdr_blocked += 1;
        }
    }
    println!(
        "[VF+VFIO]   40 VFs attached: {gdr_ok} GDR-capable, {gdr_blocked} blocked by the 32-entry switch LUT"
    );

    // --- HyV/MasQ: para-virtual but GDR squeezes through the RC. ------
    let mut hyv_stack = BaselineStack::new(BaselineKind::HyvMasq);
    let dev = hyv_stack
        .attach_device(&mut server, container, RnicId(1))
        .expect("attach");
    let gpu = server.gpus_under(RnicId(1))[0];
    let (mr, _) = hyv_stack
        .register_mr_gpu(&mut server, &dev, Gva(1 << 30), gpu, 0, 64 * MB)
        .expect("register");
    let rep = hyv_stack
        .write(&mut server, &dev, mr, Gva(1 << 30), 64 * MB)
        .expect("write");
    println!(
        "[HyV/MasQ]  GDR write: {:.1} Gbps ({} of {} pages detoured through the root complex)",
        rep.gbps, rep.rc_pages, rep.pages
    );

    // --- Stellar: vStellar device + PVDMA + eMTT. ----------------------
    let mut server2 = StellarServer::new(ServerConfig::default());
    let (container2, boot2) = server2.boot_container(8 * 1024 * MB, MemoryStrategy::Pvdma);
    println!("[vStellar]  container boot: {} (no upfront pinning)", boot2.total);
    let stack = VStellarStack::new();
    let (dev2, t) = stack
        .create_device(&mut server2, container2, RnicId(0))
        .expect("create");
    let gpu2 = server2.gpus_under(RnicId(0))[0];
    let (mr2, _) = stack
        .register_mr_gpu(&mut server2, &dev2, Gva(1 << 30), gpu2, 0, 64 * MB)
        .expect("register");
    let (qp, _) = stack.create_qp(&mut server2, &dev2).expect("qp");
    let rep2 = stack
        .write(&mut server2, &dev2, qp, mr2, Gva(1 << 30), 64 * MB)
        .expect("write");
    println!(
        "[vStellar]  device in {t}; GDR write: {:.1} Gbps ({} pages peer-to-peer, 0 via RC)",
        rep2.gbps, rep2.p2p_pages
    );
    println!();
    println!(
        "Summary: vStellar delivers {:.1}x the GDR bandwidth of HyV/MasQ and never",
        rep2.gbps / rep.gbps
    );
    println!("touches the switch LUT — every one of 64k devices can use GDR.");
}
