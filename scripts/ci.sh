#!/usr/bin/env bash
# Tier-1 gate for the stellar workspace. Every command runs --offline:
# the workspace has zero external dependencies by policy (see DESIGN.md,
# "Determinism & zero-dependency policy"), so a network fetch during CI
# is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace -- -D warnings

# Queue gate, part 1 (DESIGN.md §13): the timing-wheel event queue must
# stay observably identical to the binary-heap reference. Three layers:
# the differential property suite (wheel vs heap in lockstep), the
# mutation drill (a wheel sabotaged with a wrong-tier cascade, a dropped
# overflow migration, or a LIFO slot drain must *diverge* — proving the
# differential suite still has teeth), and the golden corpus replayed
# with `EventQueue` aliased back to the reference heap, so both queue
# implementations pin the exact same rendered bytes. (The default-build
# golden runs below cover the wheel side.)
cargo test -q --offline -p stellar-sim --test queue_diff
cargo test -q --offline -p stellar-sim --features queue-drill --test queue_drill
cargo test -q --offline -p stellar-bench --features stellar-sim/reference-queue --test golden

# Chaos suite: multi-fault plans must keep their graceful-degradation
# verdicts (and the unhardened counterfactual must keep failing).
cargo run --release --offline -p stellar-bench --bin reproduce -- chaos --quick >/dev/null

# Hybrid-fabric scale gate: the 16k-rank 3D-parallel job and the
# HPN-scale permutation must complete, and — like every experiment —
# the table must be byte-identical on one worker and eight. (The
# fig9/fig16 hybrid-vs-packet tolerance asserts run in the workspace
# test suite above; the experiment's events/sec lands in
# BENCH_reproduce.json via the --perf pass below, which covers the
# whole registry.)
scale_one="$(STELLAR_THREADS=1 cargo run --release --offline -p stellar-bench --bin reproduce -- scale --quick --json)"
scale_many="$(STELLAR_THREADS=8 cargo run --release --offline -p stellar-bench --bin reproduce -- scale --quick --json)"
if [ "$scale_one" != "$scale_many" ]; then
    echo "scale gate: reproduce scale --json differs between 1 and 8 workers" >&2
    diff <(printf '%s\n' "$scale_one") <(printf '%s\n' "$scale_many") >&2 || true
    exit 1
fi

# Determinism gate: the same figure must serialize byte-identically on
# consecutive runs — any divergence means wall-clock or unseeded
# randomness leaked into an experiment.
a="$(cargo run --release --offline -p stellar-bench --bin reproduce -- fig11 --quick --json)"
b="$(cargo run --release --offline -p stellar-bench --bin reproduce -- fig11 --quick --json)"
if [ "$a" != "$b" ]; then
    echo "determinism gate: reproduce fig11 --json differs between runs" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
fi

# Thread-count gate: the full experiment suite must emit byte-identical
# JSON whether it runs on one worker or eight — parallelism may change
# only wall-clock, never results (see DESIGN.md, "Determinism under
# parallelism").
one="$(STELLAR_THREADS=1 cargo run --release --offline -p stellar-bench --bin reproduce -- all --quick --json)"
many="$(STELLAR_THREADS=8 cargo run --release --offline -p stellar-bench --bin reproduce -- all --quick --json)"
if [ "$one" != "$many" ]; then
    echo "thread-count gate: reproduce all --json differs between 1 and 8 workers" >&2
    diff <(printf '%s\n' "$one") <(printf '%s\n' "$many") >&2 || true
    exit 1
fi

# Trace gate: --trace must produce a well-formed TRACE_<exp>.json whose
# bytes are identical between one worker and eight — the telemetry fold
# is job-ordered, so the flight-recorder window, span histograms and
# counters may not depend on scheduling (see DESIGN.md §6).
trace_dir="$(mktemp -d)"
(cd "$trace_dir" && STELLAR_THREADS=1 "$OLDPWD"/target/release/reproduce fig11 --quick --trace >/dev/null)
mv "$trace_dir/TRACE_fig11.json" "$trace_dir/TRACE_fig11.one.json"
(cd "$trace_dir" && STELLAR_THREADS=8 "$OLDPWD"/target/release/reproduce fig11 --quick --trace >/dev/null)
if ! cmp -s "$trace_dir/TRACE_fig11.one.json" "$trace_dir/TRACE_fig11.json"; then
    echo "trace gate: TRACE_fig11.json differs between 1 and 8 workers" >&2
    diff "$trace_dir/TRACE_fig11.one.json" "$trace_dir/TRACE_fig11.json" >&2 || true
    rm -rf "$trace_dir"
    exit 1
fi
rm -rf "$trace_dir"

# Strict-check gate: run representative experiments under the
# stellar-check invariant engine (`--check` opens a capture scope, so
# every quiesce point in every layer evaluates its cross-layer
# invariants). Any violation prints a sim-time-stamped report on stderr
# and exits nonzero. stdout must stay byte-identical to an unchecked
# run: the checks may observe, never perturb.
checked="$(cargo run --release --offline -p stellar-bench --bin reproduce -- fig11 --quick --json --check)"
if [ "$a" != "$checked" ]; then
    echo "check gate: reproduce fig11 --json output changed under --check" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$checked") >&2 || true
    exit 1
fi
cargo run --release --offline -p stellar-bench --bin reproduce -- chaos --quick --json --check >/dev/null

# Recovery gate: the compound-chaos recovery suite (connection
# re-establishment, plane failover, vStellar churn, 4k-rank fleet) must
# pass every invariant under --check — in particular
# transport.recovery_exactly_once and net.blacklist_readmit — and must
# be byte-identical on one worker and eight. (Its events/sec lands in
# BENCH_reproduce.json via the --perf pass below, like every experiment.)
rec_one="$(STELLAR_THREADS=1 cargo run --release --offline -p stellar-bench --bin reproduce -- recovery --quick --json --check)"
rec_many="$(STELLAR_THREADS=8 cargo run --release --offline -p stellar-bench --bin reproduce -- recovery --quick --json)"
if [ "$rec_one" != "$rec_many" ]; then
    echo "recovery gate: reproduce recovery --json differs between 1 and 8 workers" >&2
    diff <(printf '%s\n' "$rec_one") <(printf '%s\n' "$rec_many") >&2 || true
    exit 1
fi

# Cluster gate: the multi-tenant scheduling table (policy pair,
# background contention, churn storm, admission wave, hybrid scale)
# must pass every invariant under --check — in particular the
# cluster.slot_capacity / cluster.admitted_capacity /
# cluster.departed_quiesced ledger checks at every scheduler quiesce
# point — and the placement + SLO report must be byte-identical on one
# worker and eight.
clu_one="$(STELLAR_THREADS=1 cargo run --release --offline -p stellar-bench --bin reproduce -- cluster --quick --json --check)"
clu_many="$(STELLAR_THREADS=8 cargo run --release --offline -p stellar-bench --bin reproduce -- cluster --quick --json)"
if [ "$clu_one" != "$clu_many" ]; then
    echo "cluster gate: reproduce cluster --json differs between 1 and 8 workers" >&2
    diff <(printf '%s\n' "$clu_one") <(printf '%s\n' "$clu_many") >&2 || true
    exit 1
fi

# Golden-corpus gate: the recorded reproduce outputs under
# crates/bench/tests/golden/ must match fresh runs byte-for-byte at one
# worker and at eight (the golden tests run both internally).
STELLAR_THREADS=1 cargo test -q --offline -p stellar-bench --test golden
STELLAR_THREADS=8 cargo test -q --offline -p stellar-bench --test golden

# Perf harness: archive the wall-clock/event report for this build. The
# run doubles as a third determinism pass (--perf re-runs everything on
# one worker and fails if any output byte differs, trace documents
# included). The committed report is saved first so the queue gate below
# can compare against it.
perf_baseline="$(mktemp)"
cp BENCH_reproduce.json "$perf_baseline"
cargo run --release --offline -p stellar-bench --bin reproduce -- all --quick --perf >/dev/null

# Queue gate, part 2 — perf regression: scheduled-event throughput on
# the two packet-level poles (fig9 permutation, fig16 LLM training) must
# not collapse back toward the binary-heap era. The floor is half the
# committed report's events/sec: shared-CI wall clocks are noisy (±30%
# observed), but the wheel's margin over the heap is >2.5x, so a genuine
# queue regression still trips this while timer jitter does not.
python3 - "$perf_baseline" BENCH_reproduce.json <<'PY'
import json, sys
base = {s["name"]: s for s in json.load(open(sys.argv[1]))["scenarios"]}
fresh = {s["name"]: s for s in json.load(open(sys.argv[2]))["scenarios"]}
failed = False
for name in ("fig9", "fig16"):
    b, f = base[name]["events_per_sec"], fresh[name]["events_per_sec"]
    floor = 0.5 * b
    status = "ok" if f >= floor else "REGRESSION"
    print(f"queue perf gate: {name} {f:,.0f} ev/s vs archived {b:,.0f} (floor {floor:,.0f}) {status}")
    failed |= f < floor
sys.exit(1 if failed else 0)
PY
rm -f "$perf_baseline"
echo "archived BENCH_reproduce.json:"
cat BENCH_reproduce.json
