#!/usr/bin/env bash
# Tier-1 gate for the stellar workspace. Every command runs --offline:
# the workspace has zero external dependencies by policy (see DESIGN.md,
# "Determinism & zero-dependency policy"), so a network fetch during CI
# is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings
