//! Facade crate re-exporting the whole Stellar reproduction workspace.
pub use stellar_check as check;
pub use stellar_cluster as cluster;
pub use stellar_core as core;
pub use stellar_net as net;
pub use stellar_pcie as pcie;
pub use stellar_rnic as rnic;
pub use stellar_sim as sim;
pub use stellar_telemetry as telemetry;
pub use stellar_transport as transport;
pub use stellar_virt as virt;
pub use stellar_workloads as workloads;
