//! Regression test for the Fig. 5 PVDMA doorbell-aliasing incident,
//! driven end-to-end through the public server API.

use stellar::core::server::{RnicId, ServerConfig, StellarServer};
use stellar::core::vstellar::VStellarStack;
use stellar::pcie::addr::{Address, Gpa, PAGE_2M, PAGE_4K};
use stellar::pcie::Iova;
use stellar::virt::rund::MemoryStrategy;
use stellar::virt::virtio::ShmRegion;

const MB: u64 = 1024 * 1024;

/// The buggy layout: map the device doorbell into guest RAM GPA space and
/// replay the five steps. The stale IOMMU mapping must be detected.
#[test]
fn buggy_gpa_doorbell_layout_reproduces_the_alias() {
    let mut server = StellarServer::new(ServerConfig::default());
    let (c, _) = server.boot_container(64 * MB, MemoryStrategy::Pvdma);
    let stack = VStellarStack::new();
    let (dev, _) = stack.create_device(&mut server, c, RnicId(0)).unwrap();
    let doorbell = dev.doorbell;

    // Step 1 (the bug): the vDB is mapped as a device register *inside*
    // the guest RAM GPA space instead of the shm window.
    let vdb_gpa = Gpa(PAGE_2M + 4 * PAGE_4K);
    let (container, fabric) = server.container_and_fabric_mut(c);
    container
        .hypervisor_mut()
        .map_device_register(vdb_gpa, doorbell);

    // Steps 2-3: the GPU's command queue lands in the same 2 MiB block
    // and a DMA prepare pins the block, vDB included.
    let cmdq_gpa = Gpa(PAGE_2M + 5 * PAGE_4K);
    {
        let (hypervisor, pvdma) = container.pvdma_parts().unwrap();
        pvdma
            .dma_prepare(hypervisor, fabric.iommu_mut(), cmdq_gpa, PAGE_4K)
            .unwrap();
    }
    assert_eq!(
        fabric
            .iommu_mut()
            .translate(Iova(vdb_gpa.raw()))
            .unwrap()
            .hpa,
        doorbell,
        "the doorbell translation leaked into the IOMMU"
    );

    // Step 4: RDMA program exits; EPT releases the vDB.
    container.hypervisor_mut().unmap_device_register(vdb_gpa);

    // Step 5: the GPA is reused for a new command queue; PVDMA serves the
    // block from its map cache, leaving the stale doorbell mapping live.
    {
        let (hypervisor, pvdma) = container.pvdma_parts().unwrap();
        let out = pvdma
            .dma_prepare(hypervisor, fabric.iommu_mut(), vdb_gpa, PAGE_4K)
            .unwrap();
        assert_eq!(out.blocks_pinned, 0, "served from the map cache");
        let bad = pvdma.check_consistency(hypervisor, fabric.iommu_mut(), vdb_gpa, PAGE_4K);
        assert_eq!(bad.len(), 1, "the stale mapping must be detected");
        assert_eq!(bad[0].iommu_hpa, doorbell);
    }
}

/// The production fix: the doorbell lives in the virtio shm window, which
/// is not guest RAM, so the same sequence cannot alias.
#[test]
fn shm_doorbell_layout_is_immune() {
    let mut server = StellarServer::new(ServerConfig::default());
    let (c, _) = server.boot_container(64 * MB, MemoryStrategy::Pvdma);
    let stack = VStellarStack::new();
    let (dev, _) = stack.create_device(&mut server, c, RnicId(0)).unwrap();

    // The vDB goes into the shm region (its own offset namespace).
    let mut shm = ShmRegion::new(16 * PAGE_4K, PAGE_4K);
    let offset = shm.map_page(dev.doorbell).unwrap();
    assert_eq!(shm.translate(offset).unwrap(), dev.doorbell);

    // GPU command queues come and go in guest RAM; no device-register
    // mapping exists in GPA space at all.
    let (container, fabric) = server.container_and_fabric_mut(c);
    let (hypervisor, pvdma) = container.pvdma_parts().unwrap();
    for i in 0..8u64 {
        pvdma
            .dma_prepare(
                hypervisor,
                fabric.iommu_mut(),
                Gpa(PAGE_2M + i * PAGE_4K),
                PAGE_4K,
            )
            .unwrap();
    }
    let bad = pvdma.check_consistency(hypervisor, fabric.iommu_mut(), Gpa(0), 4 * PAGE_2M);
    assert!(bad.is_empty(), "no stale mappings possible: {bad:?}");
}
