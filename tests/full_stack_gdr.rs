//! End-to-end integration: container boot → device attach → memory
//! registration → DMA through the PCIe fabric, across all three stacks.

use stellar::core::baseline::{BaselineKind, BaselineStack};
use stellar::core::server::{RnicId, ServerConfig, StellarServer};
use stellar::core::vstellar::{VStellarError, VStellarStack};
use stellar::pcie::addr::Gva;
use stellar::virt::rund::MemoryStrategy;

const MB: u64 = 1024 * 1024;

#[test]
fn vstellar_full_flow_host_and_gpu() {
    let mut server = StellarServer::new(ServerConfig::default());
    let (container, boot) = server.boot_container(4 * 1024 * MB, MemoryStrategy::Pvdma);
    // PVDMA boot: seconds, no pinning.
    assert!(boot.total.as_secs_f64() < 20.0);
    assert_eq!(server.fabric().iommu().pinned_bytes(), 0);

    let stack = VStellarStack::new();
    let (dev, _) = stack
        .create_device(&mut server, container, RnicId(0))
        .unwrap();
    let (qp, _) = stack.create_qp(&mut server, &dev).unwrap();

    // Host path: pins on demand, routes via the RC.
    let (host_mr, _) = stack
        .register_mr_host(&mut server, &dev, Gva(32 * MB), 16 * MB)
        .unwrap();
    assert_eq!(server.fabric().iommu().pinned_bytes(), 16 * MB);
    let rep = stack
        .write(&mut server, &dev, qp, host_mr, Gva(32 * MB), 8 * MB)
        .unwrap();
    assert_eq!(rep.bytes, 8 * MB);
    assert_eq!(rep.p2p_pages, 0);

    // GPU path: eMTT, P2P at the switch, near line rate.
    let gpu = server.gpus_under(RnicId(0))[0];
    let (gpu_mr, _) = stack
        .register_mr_gpu(&mut server, &dev, Gva(1 << 31), gpu, 0, 32 * MB)
        .unwrap();
    let rep = stack
        .write(&mut server, &dev, qp, gpu_mr, Gva(1 << 31), 32 * MB)
        .unwrap();
    assert_eq!(rep.rc_pages, 0);
    assert!(rep.gbps > 350.0);

    // Fabric counters agree: P2P TLPs were issued.
    let (p2p, _) = server.fabric().tlp_counters();
    assert!(p2p >= 32 * MB / 4096);
}

#[test]
fn three_stacks_side_by_side_ranking() {
    // GDR throughput ranking must hold end to end:
    // vStellar > VF+VxLAN (warm) > HyV/MasQ.
    let vstellar = {
        let mut server = StellarServer::new(ServerConfig::default());
        let (c, _) = server.boot_container(512 * MB, MemoryStrategy::Pvdma);
        let stack = VStellarStack::new();
        let (dev, _) = stack.create_device(&mut server, c, RnicId(0)).unwrap();
        let gpu = server.gpus_under(RnicId(0))[0];
        let (mr, _) = stack
            .register_mr_gpu(&mut server, &dev, Gva(1 << 30), gpu, 0, 32 * MB)
            .unwrap();
        let (qp, _) = stack.create_qp(&mut server, &dev).unwrap();
        stack
            .write(&mut server, &dev, qp, mr, Gva(1 << 30), 32 * MB)
            .unwrap()
            .gbps
    };
    let run_baseline = |kind: BaselineKind| -> f64 {
        let mut server = StellarServer::new(ServerConfig::default());
        let (c, _) = server.boot_container(256 * MB, MemoryStrategy::FullPin);
        if kind == BaselineKind::VfVxlan {
            server.rnic_mut(RnicId(0)).vdevs.set_vf_count(8).unwrap();
        }
        let mut stack = BaselineStack::new(kind);
        let dev = stack.attach_device(&mut server, c, RnicId(0)).unwrap();
        let gpu = server.gpus_under(RnicId(0))[0];
        let (mr, _) = stack
            .register_mr_gpu(&mut server, &dev, Gva(1 << 30), gpu, 0, 32 * MB)
            .unwrap();
        stack
            .write(&mut server, &dev, mr, Gva(1 << 30), 32 * MB)
            .unwrap();
        stack
            .write(&mut server, &dev, mr, Gva(1 << 30), 32 * MB)
            .unwrap()
            .gbps
    };
    let vf = run_baseline(BaselineKind::VfVxlan);
    let hyv = run_baseline(BaselineKind::HyvMasq);
    assert!(
        vstellar > vf && vf > hyv,
        "ranking violated: vstellar={vstellar} vf={vf} hyv={hyv}"
    );
}

#[test]
fn vstellar_devices_scale_where_vfs_cannot() {
    let mut server = StellarServer::new(ServerConfig::default());
    let (c, _) = server.boot_container(256 * MB, MemoryStrategy::Pvdma);

    // 100+ vStellar devices on one RNIC: fine, no BDFs consumed.
    let stack = VStellarStack::new();
    for _ in 0..128 {
        stack.create_device(&mut server, c, RnicId(0)).unwrap();
    }
    assert_eq!(server.rnic(RnicId(0)).vdevs.counts().2, 128);
    assert_eq!(server.rnic(RnicId(0)).vdevs.extra_bdfs(), 0);

    // SR-IOV: silicon caps the VF count far below that.
    let err = server.rnic_mut(RnicId(1)).vdevs.set_vf_count(128);
    assert!(err.is_err(), "128 VFs must exceed the silicon limit");
}

#[test]
fn full_pin_container_rejects_pvdma_registration() {
    let mut server = StellarServer::new(ServerConfig::default());
    let (c, _) = server.boot_container(64 * MB, MemoryStrategy::FullPin);
    let stack = VStellarStack::new();
    let (dev, _) = stack.create_device(&mut server, c, RnicId(0)).unwrap();
    assert!(matches!(
        stack.register_mr_host(&mut server, &dev, Gva(0), 2 * MB),
        Err(VStellarError::PvdmaRequired)
    ));
}
