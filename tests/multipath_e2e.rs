//! Transport × fabric integration: spraying, failures injected mid-run,
//! and end-to-end determinism.

use stellar::net::{ClosConfig, ClosTopology, Network, NetworkConfig, NicId};
use stellar::transport::{App, ConnId, MsgId, NoopApp, PathAlgo, TransportConfig, TransportSim};
use stellar::workloads::allreduce::{AllReduceJob, AllReduceRunner};
use stellar_sim::{SimDuration, SimRng, SimTime};

const FOREVER: SimTime = SimTime::from_nanos(u64::MAX / 2);
const MB: u64 = 1024 * 1024;

fn make_sim(algo: PathAlgo, paths: u32, seed: u64) -> TransportSim {
    let topo = ClosTopology::build(ClosConfig {
        segments: 2,
        hosts_per_segment: 6,
        rails: 1,
        planes: 2,
        aggs_per_plane: 8,
    });
    let rng = SimRng::from_seed(seed);
    let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
    TransportSim::new(
        network,
        TransportConfig {
            algo,
            num_paths: paths,
            ..TransportConfig::default()
        },
        rng.fork("transport"),
    )
}

#[test]
fn link_goes_down_mid_transfer_and_traffic_survives() {
    let mut sim = make_sim(PathAlgo::Obs, 128, 1);
    let src = sim.network().topology().nic(0, 0);
    let dst = sim.network().topology().nic(6, 0);
    let conn = sim.add_connection(src, dst);
    let msg = sim.post_message(conn, 32 * MB);

    // Run briefly, then kill one agg uplink the flow uses.
    sim.run(&mut NoopApp, SimTime::ZERO + SimDuration::from_micros(200));
    assert!(sim.message_completed_at(conn, msg).is_none(), "still going");
    let link = sim.network().topology().route(src, dst, conn.0 as u64, 3)[1];
    sim.network_mut().set_link_up(link, false);

    sim.run(&mut NoopApp, FOREVER);
    assert!(sim.message_completed_at(conn, msg).is_some());
    let st = sim.conn_stats(conn);
    assert_eq!(st.delivered_bytes, 32 * MB);
    // Packets on the dead link were recovered on other paths.
    assert!(st.retransmits > 0, "the dead link must have eaten packets");
}

#[test]
fn allreduce_survives_loss_and_converges() {
    let mut sim = make_sim(PathAlgo::Obs, 128, 2);
    // 1% loss on an agg uplink used by ring traffic.
    let src = sim.network().topology().nic(0, 0);
    let dst = sim.network().topology().nic(6, 0);
    let lossy = sim.network().topology().route(src, dst, 0, 0)[1];
    sim.network_mut().set_loss(lossy, 0.01);

    let nics: Vec<NicId> = [0usize, 6, 1, 7, 2, 8]
        .iter()
        .map(|&h| sim.network().topology().nic(h, 0))
        .collect();
    let mut runner = AllReduceRunner::new(
        &mut sim,
        vec![AllReduceJob {
            nics,
            data_bytes: 12 * MB,
            iterations: 2,
            burst: None,
        }],
    );
    runner.start(&mut sim);
    sim.run(&mut runner, FOREVER);
    assert!(runner.all_finished());
    assert_eq!(runner.report(0).iterations.len(), 2);
}

#[test]
fn interleaved_messages_complete_in_causal_order() {
    struct Chain {
        completions: Vec<(ConnId, MsgId, SimTime)>,
    }
    impl App for Chain {
        fn on_message_complete(&mut self, sim: &mut TransportSim, conn: ConnId, msg: MsgId) {
            self.completions.push((conn, msg, sim.now()));
        }
    }
    let mut sim = make_sim(PathAlgo::RoundRobin, 16, 3);
    let a = sim.add_connection(
        sim.network().topology().nic(0, 0),
        sim.network().topology().nic(6, 0),
    );
    let b = sim.add_connection(
        sim.network().topology().nic(1, 0),
        sim.network().topology().nic(7, 0),
    );
    // Small message on b should finish before the huge one on a.
    let big = sim.post_message(a, 32 * MB);
    let small = sim.post_message(b, 64 * 1024);
    let mut app = Chain {
        completions: Vec::new(),
    };
    sim.run(&mut app, FOREVER);
    assert_eq!(app.completions.len(), 2);
    assert_eq!(app.completions[0].0, b);
    assert_eq!(app.completions[0].1, small);
    assert_eq!(app.completions[1].1, big);
    // Timestamps are non-decreasing.
    assert!(app.completions[0].2 <= app.completions[1].2);
}

#[test]
fn bgp_reroute_takes_over_from_rto_recovery() {
    // Fast-converging control plane: after convergence the dead link is
    // routed around, so late traffic needs no retransmissions at all.
    let topo = ClosTopology::build(ClosConfig {
        segments: 2,
        hosts_per_segment: 2,
        rails: 1,
        planes: 2,
        aggs_per_plane: 4,
    });
    let rng = SimRng::from_seed(21);
    let network = Network::new(
        topo,
        NetworkConfig {
            bgp_convergence: SimDuration::from_millis(1),
            ..NetworkConfig::default()
        },
        rng.fork("net"),
    );
    let mut sim = TransportSim::new(network, TransportConfig::default(), rng.fork("t"));
    let src = sim.network().topology().nic(0, 0);
    let dst = sim.network().topology().nic(2, 0);
    let dead = sim.network().topology().route(src, dst, 0, 0)[1];
    sim.network_mut().set_link_state_at(SimTime::ZERO, dead, false);

    let conn = sim.add_connection(src, dst);
    // Phase 1 (pre-convergence): RTO recovery carries the transfer.
    let m1 = sim.post_message(conn, 2 * MB);
    sim.run(&mut NoopApp, FOREVER);
    assert!(sim.message_completed_at(conn, m1).is_some());
    let retx_phase1 = sim.conn_stats(conn).retransmits;

    // Phase 2 (post-convergence): the fabric routes around the failure.
    sim.schedule_timer(SimTime::ZERO + SimDuration::from_millis(5), 0);
    struct Kick;
    impl App for Kick {
        fn on_timer(&mut self, sim: &mut TransportSim, _t: u64) {
            sim.post_message(ConnId(0), 2 * MB);
        }
        fn on_message_complete(&mut self, _s: &mut TransportSim, _c: ConnId, _m: MsgId) {}
    }
    sim.run(&mut Kick, FOREVER);
    let st = sim.conn_stats(conn);
    assert_eq!(st.completed_messages, 2);
    assert_eq!(
        st.retransmits, retx_phase1,
        "post-convergence traffic must not need RTO recovery"
    );
}

#[test]
fn whole_experiment_is_deterministic() {
    let run = || {
        let mut sim = make_sim(PathAlgo::Obs, 128, 99);
        let src = sim.network().topology().nic(2, 0);
        let dst = sim.network().topology().nic(8, 0);
        let lossy = sim.network().topology().route(src, dst, 0, 5)[1];
        sim.network_mut().set_loss(lossy, 0.02);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 16 * MB);
        sim.run(&mut NoopApp, FOREVER);
        let st = sim.conn_stats(conn);
        (
            sim.message_completed_at(conn, msg).unwrap().as_nanos(),
            st.sent_packets,
            st.retransmits,
            st.ecn_acks,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn per_path_cc_ablation_uses_fewer_paths_but_completes() {
    // §9: per-path CCCs force a much lower fan-out (4 paths) than the
    // shared-CCC design (128). Both must complete; the shared/128 design
    // finishes no later under uncongested conditions.
    let run = |per_path: bool, paths: u32| {
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 2,
            rails: 1,
            planes: 2,
            aggs_per_plane: 8,
        });
        let rng = SimRng::from_seed(5);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        let mut sim = TransportSim::new(
            network,
            TransportConfig {
                algo: PathAlgo::Obs,
                num_paths: paths,
                per_path_cc: per_path,
                ..TransportConfig::default()
            },
            rng.fork("t"),
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(2, 0);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 16 * MB);
        sim.run(&mut NoopApp, FOREVER);
        sim.message_completed_at(conn, msg).unwrap()
    };
    let shared = run(false, 128);
    let per_path = run(true, 4);
    assert!(
        shared <= per_path + SimDuration::from_millis(2),
        "shared {shared} vs per-path {per_path}"
    );
}
