//! Cross-crate property-based tests (proptest_lite) on the invariants
//! DESIGN.md commits to.

use stellar::net::fixture::{fluid_fabric, hybrid_fabric};
use stellar::net::{
    ClosConfig, ClosTopology, FluidConfig, HybridConfig, Network, NetworkConfig, NicId,
};
use stellar::pcie::addr::{Gpa, Hpa, PAGE_4K};
use stellar::pcie::iommu::{Iommu, IommuConfig};
use stellar::pcie::Iova;
use stellar::transport::{NoopApp, PathAlgo, TransportConfig, TransportSim};
use stellar::virt::hypervisor::{Hypervisor, HypervisorConfig};
use stellar::virt::pvdma::{Pvdma, PvdmaConfig};
use stellar::workloads::allreduce::{AllReduceJob, AllReduceRunner};
use stellar_sim::proptest_lite::check;
use stellar_sim::{SimRng, SimTime};

const FOREVER: SimTime = SimTime::from_nanos(u64::MAX / 2);

const ALGOS: [PathAlgo; 6] = [
    PathAlgo::SinglePath,
    PathAlgo::RoundRobin,
    PathAlgo::Obs,
    PathAlgo::Dwrr,
    PathAlgo::BestRtt,
    PathAlgo::MpRdma,
];

/// Every algorithm, any path count, any message size: the message is
/// delivered exactly once, in full, and the sim goes idle.
#[test]
fn any_transport_config_delivers_exactly_once() {
    check("any_transport_config_delivers_exactly_once", 24, |g| {
        let algo = *g.pick(&ALGOS);
        let paths = g.u32(1, 161);
        let kb = g.u64(1, 2049);
        let seed = g.u64(0, 1000);
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 3,
            rails: 1,
            planes: 2,
            aggs_per_plane: 4,
        });
        let rng = SimRng::from_seed(seed);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        let mut sim = TransportSim::new(
            network,
            TransportConfig {
                algo,
                num_paths: paths,
                ..TransportConfig::default()
            },
            rng.fork("t"),
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(3, 0);
        let conn = sim.add_connection(src, dst);
        let bytes = kb * 1024;
        let msg = sim.post_message(conn, bytes);
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, msg).is_some());
        let st = sim.conn_stats(conn);
        assert_eq!(st.delivered_bytes, bytes);
        assert_eq!(st.completed_messages, 1);
        assert!(sim.all_idle());
    });
}

/// Under arbitrary loss, spraying still delivers everything exactly
/// once (RTO + path exclusion recovery).
#[test]
fn lossy_fabric_still_delivers_exactly_once() {
    check("lossy_fabric_still_delivers_exactly_once", 24, |g| {
        let loss_pct = g.u32(0, 11);
        let seed = g.u64(0, 500);
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 2,
            rails: 1,
            planes: 2,
            aggs_per_plane: 4,
        });
        let rng = SimRng::from_seed(seed);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        let mut sim = TransportSim::new(
            network,
            TransportConfig {
                algo: PathAlgo::Obs,
                num_paths: 64,
                ..TransportConfig::default()
            },
            rng.fork("t"),
        );
        let src = sim.network().topology().nic(0, 0);
        let dst = sim.network().topology().nic(2, 0);
        let lossy = sim.network().topology().route(src, dst, 0, 0)[1];
        sim.network_mut().set_loss(lossy, loss_pct as f64 / 100.0);
        let conn = sim.add_connection(src, dst);
        let msg = sim.post_message(conn, 512 * 1024);
        sim.run(&mut NoopApp, FOREVER);
        assert!(sim.message_completed_at(conn, msg).is_some());
        assert_eq!(sim.conn_stats(conn).delivered_bytes, 512 * 1024);
    });
}

/// Ring AllReduce with an arbitrary ring subset completes every
/// iteration regardless of ring size or payload.
#[test]
fn allreduce_always_converges() {
    check("allreduce_always_converges", 24, |g| {
        let ranks = g.usize(2, 9);
        let data_kb = g.u64(8, 513);
        let seed = g.u64(0, 200);
        let topo = ClosTopology::build(ClosConfig {
            segments: 2,
            hosts_per_segment: 4,
            rails: 1,
            planes: 2,
            aggs_per_plane: 4,
        });
        let rng = SimRng::from_seed(seed);
        let network = Network::new(topo, NetworkConfig::default(), rng.fork("net"));
        let mut sim = TransportSim::new(network, TransportConfig::default(), rng.fork("t"));
        let nics: Vec<NicId> = (0..ranks)
            .map(|r| sim.network().topology().nic(r, 0))
            .collect();
        let mut runner = AllReduceRunner::new(
            &mut sim,
            vec![AllReduceJob {
                nics,
                data_bytes: data_kb * 1024,
                iterations: 2,
                burst: None,
            }],
        );
        runner.start(&mut sim);
        sim.run(&mut runner, FOREVER);
        assert!(runner.all_finished());
        let rep = runner.report(0);
        assert_eq!(rep.iterations.len(), 2);
        // Iterations are properly ordered in time.
        assert!(rep.iterations[0].finished <= rep.iterations[1].started);
    });
}

/// The fluid and hybrid fabrics are deterministic across worker-thread
/// counts: a permutation run produces a bit-identical report whether
/// the process-wide work pool is pinned to 1 or 8 threads (the fabric
/// itself is single-threaded state, so pool size must be invisible).
#[test]
fn fluid_and_hybrid_reports_ignore_thread_count() {
    use stellar::workloads::{run_permutation_with, PermutationConfig};
    use stellar_sim::par::with_thread_override;
    check("fluid_and_hybrid_reports_ignore_thread_count", 6, |g| {
        let seed = g.u64(0, 1000);
        let cfg = PermutationConfig {
            topology: ClosConfig {
                segments: 2,
                hosts_per_segment: 4,
                rails: 2,
                planes: 2,
                aggs_per_plane: 4,
            },
            message_bytes: 128 * 1024,
            offered_gbps: 40.0,
            duration: stellar_sim::SimDuration::from_micros(300),
            seed,
            ..PermutationConfig::default()
        };
        let fluid_1 = with_thread_override(1, || {
            run_permutation_with(&cfg, |t, n, r| fluid_fabric(t, n, FluidConfig::default(), r))
        });
        let fluid_8 = with_thread_override(8, || {
            run_permutation_with(&cfg, |t, n, r| fluid_fabric(t, n, FluidConfig::default(), r))
        });
        assert_eq!(format!("{fluid_1:?}"), format!("{fluid_8:?}"));
        let hybrid_1 = with_thread_override(1, || {
            run_permutation_with(&cfg, |t, n, r| hybrid_fabric(t, n, HybridConfig::default(), r))
        });
        let hybrid_8 = with_thread_override(8, || {
            run_permutation_with(&cfg, |t, n, r| hybrid_fabric(t, n, HybridConfig::default(), r))
        });
        assert_eq!(format!("{hybrid_1:?}"), format!("{hybrid_8:?}"));
    });
}

/// PVDMA keeps the IOMMU consistent with the guest as long as no
/// device register shares a block with RAM (the safe configuration).
#[test]
fn pvdma_is_consistent_without_register_aliasing() {
    check("pvdma_is_consistent_without_register_aliasing", 24, |g| {
        let touches = g.vec(1, 20, |g| (g.u64(0, 64), g.u64(1, 17)));
        let mut h = Hypervisor::new(HypervisorConfig::default());
        h.add_ram(Gpa(0), Hpa(1 << 40), 64 * 2 * 1024 * 1024);
        let mut iommu = Iommu::new(IommuConfig::default());
        let mut pvdma = Pvdma::new(PvdmaConfig::default());
        for (block, pages) in touches {
            let gpa = Gpa(block * 2 * 1024 * 1024);
            pvdma.dma_prepare(&h, &mut iommu, gpa, pages * PAGE_4K).unwrap();
            // Pinned translations match the hypervisor's view.
            let t = iommu.translate(Iova(gpa.0)).unwrap();
            let (expect, _) = h.translate(gpa).unwrap();
            assert_eq!(t.hpa, expect);
        }
        let bad = pvdma.check_consistency(&h, &mut iommu, Gpa(0), 64 * 2 * 1024 * 1024);
        assert!(bad.is_empty());
    });
}
